package pmem

import (
	"bytes"
	"testing"
)

// readAt reads n durable bytes at addr, failing the test on error.
func readAt(t *testing.T, d *Device, addr Addr, n int) []byte {
	t.Helper()
	got := make([]byte, n)
	if err := d.Read(0, addr, got); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestDrainStealNotFenced(t *testing.T) {
	// A crash between a drain's whole-device steal and its commits must
	// not hand any of the stolen batch to the media: a stolen-but-
	// uncommitted block was never fenced, so recovery must not see it.
	d := newDev(t)
	var fired bool
	d.ArmCrash(CrashAtDrain, 0, CrashDropAll, func() { fired = true })
	for tid := 0; tid < 3; tid++ {
		if err := d.WriteBack(tid, Addr(64+tid*64), []byte{0xAA, byte(tid)}); err != nil {
			t.Fatal(err)
		}
	}
	d.Drain(0)
	if !fired {
		t.Fatal("armed drain crash did not fire")
	}
	if !d.Failed() {
		t.Fatal("device not fail-stopped after armed crash")
	}
	for tid := 0; tid < 3; tid++ {
		if got := readAt(t, d, Addr(64+tid*64), 2); !bytes.Equal(got, []byte{0, 0}) {
			t.Fatalf("stolen write for tid %d reached the media: %v", tid, got)
		}
	}
}

func TestDrainStealPartialCrashSamplesStolenBatch(t *testing.T) {
	// Under CrashPartial the stolen batch is exactly the staged population
	// at the crash instant: a seeded subset may survive, and the fate must
	// be reproducible from the seed.
	run := func(seed int64) []byte {
		d := newDev(t)
		d.SeedCrashRNG(seed)
		d.ArmCrash(CrashAtDrain, 0, CrashPartial, nil)
		for i := 0; i < 32; i++ {
			if err := d.WriteBack(i%4, Addr(64+i*8), []byte{byte(i + 1)}); err != nil {
				t.Fatal(err)
			}
		}
		d.Drain(0)
		got := make([]byte, 32*8)
		if err := d.Read(0, 64, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(11), run(11)
	if !bytes.Equal(a, b) {
		t.Fatal("partial drain-crash fate not reproducible from the seed")
	}
}

func TestCrashAtFenceSkipCount(t *testing.T) {
	// skip counts occurrences: the first `skip` fences commit normally,
	// the next one dies between steal and commit.
	d := newDev(t)
	d.ArmCrash(CrashAtFence, 2, CrashDropAll, nil)
	for i := 0; i < 2; i++ {
		if err := d.WriteBack(0, Addr(64+i*8), []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
		d.Fence(0)
		if d.Failed() {
			t.Fatalf("crash fired on skipped fence %d", i)
		}
		if got := readAt(t, d, Addr(64+i*8), 1); got[0] != byte(i+1) {
			t.Fatalf("skipped fence %d did not commit: %v", i, got)
		}
	}
	if err := d.WriteBack(0, 128, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	d.Fence(0)
	if !d.Failed() {
		t.Fatal("third fence did not fire the armed crash")
	}
	if got := readAt(t, d, 128, 1); got[0] != 0 {
		t.Fatal("fencing thread's stolen batch committed at the crash")
	}
}

func TestCrashAtDurablePoint(t *testing.T) {
	// CrashAtDurable kills the machine at the head of a direct durable
	// write — the write itself is lost.
	d := newDev(t)
	d.ArmCrash(CrashAtDurable, 0, CrashDropAll, nil)
	if err := d.WriteDurable(64, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	if !d.Failed() {
		t.Fatal("durable-point crash did not fire")
	}
	if got := readAt(t, d, 64, 1); got[0] != 0 {
		t.Fatal("durable write survived the crash armed at its head")
	}
}

func TestDisarmCrash(t *testing.T) {
	d := newDev(t)
	d.ArmCrash(CrashAtFence, 0, CrashDropAll, nil)
	if !d.DisarmCrash() {
		t.Fatal("DisarmCrash on a pending arm reported false")
	}
	if err := d.WriteBack(0, 64, []byte{1}); err != nil {
		t.Fatal(err)
	}
	d.Fence(0)
	if d.Failed() {
		t.Fatal("disarmed crash fired")
	}
	if got := readAt(t, d, 64, 1); got[0] != 1 {
		t.Fatal("fence after disarm did not commit")
	}
	if d.DisarmCrash() {
		t.Fatal("DisarmCrash with nothing armed reported true")
	}
}

func TestCrashFloorDropsStolenBatch(t *testing.T) {
	// White-box: a commit attempt for a batch stolen BEFORE the crash
	// (a fence or drain worker that lost the race with the power failure)
	// must not reach the media — every write at or below the crash floor
	// is dead. This is the second line of defense behind the armed crash
	// points, for the race that cannot be staged from outside.
	d := newDev(t)
	if err := d.WriteBack(1, 64, []byte{0xBB}); err != nil {
		t.Fatal(err)
	}
	b := d.buf(1)
	b.mu.Lock()
	batch, _ := b.stealLocked()
	b.mu.Unlock()
	if len(batch) == 0 {
		t.Fatal("test setup: nothing stolen")
	}
	d.Crash(CrashDropAll)
	d.Revive()
	if n := d.commitBatch(batch); n != 0 {
		t.Fatalf("commitBatch landed %d bytes from below the crash floor", n)
	}
	if got := readAt(t, d, 64, 1); got[0] != 0 {
		t.Fatal("stolen pre-crash write reached the media")
	}
}

func TestCrashFloorBlocksStaleCommit(t *testing.T) {
	// Fail-stop semantics across recovery: a thread that staged writes
	// before the crash and fences only after Revive must not commit them —
	// the crash consumed (and here dropped) its staged batch.
	d := newDev(t)
	if err := d.WriteBack(1, 64, []byte{0xBB}); err != nil {
		t.Fatal(err)
	}
	// The crash samples (and here drops) thread 1's staged write; thread 1
	// has not yet fenced.
	d.Crash(CrashDropAll)
	d.Revive()
	d.Fence(1) // stale fence from the "previous incarnation"
	if got := readAt(t, d, 64, 1); got[0] != 0 {
		t.Fatal("pre-crash staged write committed by a post-revive fence")
	}
	// New writes after Revive are above the floor and commit normally.
	if err := d.WriteBack(1, 72, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	d.Fence(1)
	if got := readAt(t, d, 72, 1); got[0] != 0xCC {
		t.Fatal("post-revive write did not commit")
	}
}

func TestFailedDeviceDiscardsNewStages(t *testing.T) {
	// While fail-stopped, staging is silently discarded: a racing thread
	// cannot seed writes for a post-recovery fence to commit.
	d := newDev(t)
	d.Crash(CrashDropAll)
	if err := d.WriteBack(2, 64, []byte{0xDD}); err != nil {
		t.Fatal(err)
	}
	d.Revive()
	d.Fence(2)
	if got := readAt(t, d, 64, 1); got[0] != 0 {
		t.Fatal("write staged while failed committed after revive")
	}
}
