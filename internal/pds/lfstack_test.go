package pds

import (
	"fmt"
	"sync"
	"testing"

	"montage/internal/core"
	"montage/internal/pmem"
)

func TestLFStackLIFO(t *testing.T) {
	s := NewLFStack(newSys(t))
	for i := 0; i < 40; i++ {
		if err := s.Push(0, []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 40 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v, ok := s.Peek(0); !ok || string(v) != "v39" {
		t.Fatalf("Peek = %q %v", v, ok)
	}
	for i := 39; i >= 0; i-- {
		v, ok, err := s.Pop(0)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("Pop = %q ok=%v err=%v, want v%02d", v, ok, err, i)
		}
	}
	if _, ok, _ := s.Pop(0); ok {
		t.Fatal("empty pop")
	}
	if _, ok := s.Peek(0); ok {
		t.Fatal("empty peek")
	}
}

func TestLFStackConcurrent(t *testing.T) {
	sys := newSys(t)
	s := NewLFStack(sys)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				sys.Advance()
			}
		}
	}()
	var wg sync.WaitGroup
	pushed := make([]int, 4)
	popped := make([]int, 4)
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if i%3 == 2 {
					if _, ok, err := s.Pop(tid); err != nil {
						t.Error(err)
						return
					} else if ok {
						popped[tid]++
					}
				} else {
					if err := s.Push(tid, []byte{byte(tid), byte(i)}); err != nil {
						t.Error(err)
						return
					}
					pushed[tid]++
				}
			}
		}(tid)
	}
	wg.Wait()
	close(stop)
	want := 0
	for tid := 0; tid < 4; tid++ {
		want += pushed[tid] - popped[tid]
	}
	if s.Len() != want {
		t.Fatalf("Len=%d want %d", s.Len(), want)
	}
	// Depth labels strictly decrease top-down.
	node, _ := s.top.Load()
	prev := uint64(1 << 62)
	for node != nil {
		if node.depth >= prev {
			t.Fatalf("depth %d not decreasing (prev %d)", node.depth, prev)
		}
		prev = node.depth
		node = node.next
	}
}

func TestLFStackCrashRecovery(t *testing.T) {
	sys := newSys(t)
	s := NewLFStack(sys)
	for i := 0; i < 30; i++ {
		if err := s.Push(0, []byte(fmt.Sprintf("s%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if _, ok, err := s.Pop(0); !ok || err != nil {
			t.Fatal("pop failed")
		}
	}
	sys.Sync(0)
	s.Push(0, []byte("doomed"))
	sys.Device().Crash(pmem.CrashDropAll)

	sys2, payloads, err := core.Recover(sys.Device(), core.Config{ArenaSize: 1 << 24, MaxThreads: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RecoverLFStack(sys2, payloads)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.DrainTopDown(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 18 {
		t.Fatalf("recovered %d items, want 18", len(got))
	}
	for i, v := range got {
		if string(v) != fmt.Sprintf("s%02d", 17-i) {
			t.Fatalf("item %d = %q, LIFO violated", i, v)
		}
	}
	// The recovered stack keeps working.
	if err := s2.Push(0, []byte("post")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s2.Pop(0); string(v) != "post" {
		t.Fatalf("post-recovery pop = %q", v)
	}
}

func TestCrashFuzzLFStack(t *testing.T) {
	for seed := int64(0); seed < fuzzSeeds; seed++ {
		f := newFuzzEnv(t, seed)
		s := NewLFStack(f.sys)
		var model [][]byte
		states := []string{queueState(model)}
		ops := 300 + f.rng.Intn(300)
		for i := 0; i < ops; i++ {
			if f.rng.Intn(3) != 0 {
				v := []byte(fmt.Sprintf("v%d", i))
				if err := s.Push(0, v); err != nil {
					t.Fatal(err)
				}
				model = append(model, v)
			} else {
				_, ok, err := s.Pop(0)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					model = model[:len(model)-1]
				}
			}
			states = append(states, queueState(model))
			f.maybeTick(i)
		}
		f.sys.Device().Crash(f.crashMode())
		sys2, payloads, err := core.Recover(f.sys.Device(), f.cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := RecoverLFStack(sys2, payloads)
		if err != nil {
			t.Fatal(err)
		}
		top, err := s2.DrainTopDown(0)
		if err != nil {
			t.Fatal(err)
		}
		bottomUp := make([][]byte, len(top))
		for i, v := range top {
			bottomUp[len(top)-1-i] = v
		}
		if stateInPrefixes(queueState(bottomUp), states) < 0 {
			t.Fatalf("lfstack seed %d: recovered state is not a prefix state", seed)
		}
	}
}
