package pds

import (
	"errors"
	"fmt"
	"testing"

	"montage/internal/core"
	"montage/internal/pmem"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(newSys(t))
	if v.Len() != 0 {
		t.Fatal("fresh vector not empty")
	}
	for i := 0; i < 20; i++ {
		idx, err := v.Append(0, []byte(fmt.Sprintf("e%d", i)))
		if err != nil || idx != i {
			t.Fatalf("Append -> %d, %v", idx, err)
		}
	}
	for i := 0; i < 20; i++ {
		val, err := v.Get(0, i)
		if err != nil || string(val) != fmt.Sprintf("e%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, val, err)
		}
	}
	if err := v.Set(0, 5, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if val, _ := v.Get(0, 5); string(val) != "updated" {
		t.Fatalf("Set lost: %q", val)
	}
	if _, err := v.Get(0, 20); !errors.Is(err, ErrIndexOutOfRange) {
		t.Fatalf("OOB Get err = %v", err)
	}
	if err := v.Set(0, -1, nil); !errors.Is(err, ErrIndexOutOfRange) {
		t.Fatalf("OOB Set err = %v", err)
	}
	val, ok, err := v.PopBack(0)
	if err != nil || !ok || string(val) != "e19" {
		t.Fatalf("PopBack = %q %v %v", val, ok, err)
	}
	if v.Len() != 19 {
		t.Fatalf("Len = %d", v.Len())
	}
}

func TestVectorCrossEpochSet(t *testing.T) {
	sys := newSys(t)
	v := NewVector(sys)
	v.Append(0, []byte("old"))
	sys.Advance() // next Set must take the copying path
	if err := v.Set(0, 0, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if val, _ := v.Get(0, 0); string(val) != "new" {
		t.Fatalf("cross-epoch Set lost: %q", val)
	}
}

func TestVectorCrashRecovery(t *testing.T) {
	sys := newSys(t)
	v := NewVector(sys)
	for i := 0; i < 30; i++ {
		if _, err := v.Append(0, []byte(fmt.Sprintf("x%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, ok, err := v.PopBack(0); !ok || err != nil {
			t.Fatal("pop failed")
		}
	}
	v.Set(0, 3, []byte("updated3"))
	sys.Sync(0)
	v.Append(0, []byte("doomed"))
	sys.Device().Crash(pmem.CrashDropAll)

	sys2, payloads, err := core.Recover(sys.Device(), core.Config{ArenaSize: 1 << 24, MaxThreads: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := RecoverVector(sys2, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Len() != 25 {
		t.Fatalf("recovered %d elements, want 25", v2.Len())
	}
	all, err := v2.SnapshotAll(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, val := range all {
		want := fmt.Sprintf("x%02d", i)
		if i == 3 {
			want = "updated3"
		}
		if string(val) != want {
			t.Fatalf("element %d = %q, want %q", i, val, want)
		}
	}
	// Recovered vector keeps appending at the right index.
	if idx, err := v2.Append(0, []byte("post")); err != nil || idx != 25 {
		t.Fatalf("post-recovery Append -> %d, %v", idx, err)
	}
}

func TestCrashFuzzVector(t *testing.T) {
	for seed := int64(0); seed < fuzzSeeds; seed++ {
		f := newFuzzEnv(t, seed)
		v := NewVector(f.sys)
		var model [][]byte
		states := []string{queueState(model)}
		ops := 400 + f.rng.Intn(300)
		for i := 0; i < ops; i++ {
			switch f.rng.Intn(4) {
			case 0:
				if len(model) > 0 {
					idx := f.rng.Intn(len(model))
					val := []byte(fmt.Sprintf("u%d", i))
					if err := v.Set(0, idx, val); err != nil {
						t.Fatal(err)
					}
					model[idx] = val
				}
			case 1:
				if _, ok, err := v.PopBack(0); err != nil {
					t.Fatal(err)
				} else if ok {
					model = model[:len(model)-1]
				}
			default:
				val := []byte(fmt.Sprintf("a%d", i))
				if _, err := v.Append(0, val); err != nil {
					t.Fatal(err)
				}
				model = append(model, val)
			}
			// states need value snapshots (Set mutates in place)
			cp := make([][]byte, len(model))
			copy(cp, model)
			states = append(states, queueState(cp))
			f.maybeTick(i)
		}
		f.sys.Device().Crash(f.crashMode())
		sys2, payloads, err := core.Recover(f.sys.Device(), f.cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := RecoverVector(sys2, payloads)
		if err != nil {
			t.Fatal(err)
		}
		all, err := v2.SnapshotAll(0)
		if err != nil {
			t.Fatal(err)
		}
		if stateInPrefixes(queueState(all), states) < 0 {
			t.Fatalf("vector seed %d: recovered state is not a prefix state", seed)
		}
	}
}
