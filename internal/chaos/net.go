package chaos

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"montage/internal/pmem"
	"montage/internal/server"
)

// netClient is a minimal memcached-text-protocol client for net-mode
// schedules.
type netClient struct {
	conn net.Conn
	br   *bufio.Reader
	mode AckMode
}

func dialNet(addr string) (*netClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &netClient{conn: conn, br: bufio.NewReader(conn)}, nil
}

func (c *netClient) line() (string, error) {
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := c.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// cmd sends one command (the caller includes the trailing \r\n and any
// data block) and reads the first response line.
func (c *netClient) cmd(format string, args ...any) (string, error) {
	if _, err := fmt.Fprintf(c.conn, format, args...); err != nil {
		return "", err
	}
	return c.line()
}

// setMode switches the connection's durability-ack mode if needed.
func (c *netClient) setMode(m AckMode) error {
	if c.mode == m {
		return nil
	}
	resp, err := c.cmd("durability %s\r\n", m)
	if err != nil {
		return err
	}
	if resp != "OK" {
		return fmt.Errorf("durability %s: %q", m, resp)
	}
	c.mode = m
	return nil
}

func (c *netClient) get(key string) (string, bool, error) {
	resp, err := c.cmd("get %s\r\n", key)
	if err != nil {
		return "", false, err
	}
	if resp == "END" {
		return "", false, nil
	}
	if !strings.HasPrefix(resp, "VALUE ") {
		return "", false, fmt.Errorf("get %s: %q", key, resp)
	}
	data, err := c.line()
	if err != nil {
		return "", false, err
	}
	if end, err := c.line(); err != nil || end != "END" {
		return "", false, fmt.Errorf("get %s: missing END (%q, %v)", key, end, err)
	}
	return data, true, nil
}

// runNetSchedule drives one schedule through a live TCP server: workers
// speak the wire protocol (switching durability modes per op), the crash
// is injected with the gated "crash" command, and the readback happens
// over a fresh connection against the in-place-recovered store. Per-shard
// watermarks are not observable through the wire, so the checker runs
// with nil cutoffs: binding-ack checks only.
func runNetSchedule(cfg Config) (Result, error) {
	res := Result{Seed: cfg.Seed, Shards: cfg.Shards, Mode: cfg.Mode, Net: true, Nodes: 1, Blocking: cfg.BlockingAdvance}
	rng := rand.New(rand.NewSource(cfg.Seed))
	plan := drawPlan(rng, cfg)
	res.Trigger = plan.trigger(true)

	srv, err := server.New(server.Config{
		Shards:          cfg.Shards,
		ArenaSize:       cfg.ArenaSize,
		MaxConns:        cfg.Workers + 4,
		EpochLength:     500 * time.Microsecond,
		AllowCrash:      true,
		BlockingAdvance: cfg.BlockingAdvance,
		Recorder:        cfg.Recorder,
	})
	if err != nil {
		return res, err
	}
	addr, err := srv.Listen()
	if err != nil {
		return res, err
	}
	go srv.Serve()
	defer srv.Shutdown(2 * time.Second)
	srv.SeedCrashRNG(cfg.Seed)

	hist := NewHistory(cfg.Workers)
	crashed := make(chan struct{})
	var crashOnce sync.Once
	markCrashed := func() { crashOnce.Do(func() { close(crashed) }) }
	var crashFired atomic.Bool

	crashCmd := "crash\r\n"
	if cfg.Mode == pmem.CrashPartial {
		crashCmd = "crash partial\r\n"
	}
	// injectCrash stamps the crash instant BEFORE the command goes on the
	// wire: any ack stamped later raced the crash and is non-binding.
	injectCrash := func(c *netClient) error {
		hist.MarkCrash()
		resp, err := c.cmd("%s", crashCmd)
		if err != nil {
			return err
		}
		if resp != "OK" {
			return fmt.Errorf("crash: %q", resp)
		}
		markCrashed()
		return nil
	}

	opErrs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		c, err := dialNet(addr.String())
		if err != nil {
			markCrashed() // release nothing-specific; just stop peers
			wg.Wait()
			return res, err
		}
		wg.Add(1)
		go func(w int, c *netClient) {
			defer wg.Done()
			defer c.conn.Close()
			wrng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(w)))
			for i := 0; i < cfg.OpsPerWorker; i++ {
				select {
				case <-crashed:
					return
				default:
				}
				op := Op{Worker: w, Index: i, Key: fmt.Sprintf("k%02d", wrng.Intn(cfg.Keys))}
				if wrng.Intn(4) == 0 {
					op.Kind = OpDelete
				}
				switch wrng.Intn(4) {
				case 0:
					op.Mode = AckSync
				case 1:
					op.Mode = AckEpochWait
				}
				if err := c.setMode(op.Mode); err != nil {
					opErrs[w] = err
					return
				}
				op.Start = hist.Next()
				var resp string
				var err error
				if op.Kind == OpSet {
					op.Value = fmt.Sprintf("s%x.w%d.%d", uint64(cfg.Seed), w, i)
					op.Found = true
					resp, err = c.cmd("set %s 0 0 %d\r\n%s\r\n", op.Key, len(op.Value), op.Value)
				} else {
					resp, err = c.cmd("delete %s\r\n", op.Key)
				}
				if err != nil {
					opErrs[w] = fmt.Errorf("w%d#%d %s %s: %w", w, i, op.Kind, op.Key, err)
					return
				}
				op.End = hist.Next()
				op.AckSeq = op.End
				switch {
				case op.Kind == OpSet && resp == "STORED":
					op.Acked = true
				case op.Kind == OpDelete && resp == "DELETED":
					op.Acked, op.Found = true, true
				case op.Kind == OpDelete && resp == "NOT_FOUND":
					op.Acked, op.Found = true, false
				case strings.HasPrefix(resp, "SERVER_ERROR crash"):
					// The op raced the injected crash: its parked ack was
					// aborted, so it carries no promise (Acked stays false)
					// but its effect may still be in either state — a raced
					// delete must stay eligible as an absence explainer.
					op.Found = true
				default:
					opErrs[w] = fmt.Errorf("w%d#%d %s %s: unexpected ack %q", w, i, op.Kind, op.Key, resp)
					return
				}
				hist.Record(op)
				if hist.Completed() >= plan.afterOps && crashFired.CompareAndSwap(false, true) {
					if err := injectCrash(c); err != nil {
						opErrs[w] = err
						return
					}
				}
			}
		}(w, c)
	}
	wg.Wait()
	for _, e := range opErrs {
		if e != nil {
			return res, e
		}
	}
	if crashFired.CompareAndSwap(false, true) {
		c, err := dialNet(addr.String())
		if err != nil {
			return res, err
		}
		err = injectCrash(c)
		c.conn.Close()
		if err != nil {
			return res, err
		}
	}

	rb, err := dialNet(addr.String())
	if err != nil {
		return res, err
	}
	recovered := make(map[string]string)
	for i := 0; i < cfg.Keys; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, ok, gerr := rb.get(k)
		if gerr != nil {
			rb.conn.Close()
			return res, gerr
		}
		if ok {
			recovered[k] = v
		}
	}
	rb.conn.Close()

	ops := hist.Ops()
	res.Ops = len(ops)
	res.History = ops
	res.CrashSeq = hist.CrashSeq()
	res.Survivors = len(recovered)
	res.Violations = Check(CheckInput{
		Ops:       ops,
		CrashSeq:  hist.CrashSeq(),
		Cutoffs:   nil,
		Recovered: recovered,
	})
	recordSchedule(cfg, &res)
	return res, nil
}
