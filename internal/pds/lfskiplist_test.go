package pds

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"montage/internal/core"
	"montage/internal/pmem"
)

func TestLFSkipListBasics(t *testing.T) {
	m := NewLFSkipList(newSys(t))
	if _, ok := m.Get(0, "x"); ok {
		t.Fatal("empty Get")
	}
	if ins, err := m.Insert(0, "x", []byte("1")); err != nil || !ins {
		t.Fatal(err)
	}
	if ins, _ := m.Insert(0, "x", []byte("2")); ins {
		t.Fatal("duplicate insert")
	}
	if v, ok := m.Get(0, "x"); !ok || string(v) != "1" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if !m.Contains(0, "x") || m.Len() != 1 {
		t.Fatal("metadata wrong")
	}
	if rm, err := m.Remove(0, "x"); err != nil || !rm {
		t.Fatal(err)
	}
	if m.Contains(0, "x") || m.Len() != 0 {
		t.Fatal("remove failed")
	}
	if rm, _ := m.Remove(0, "x"); rm {
		t.Fatal("double remove")
	}
}

func TestLFSkipListOrderedScan(t *testing.T) {
	m := NewLFSkipList(newSys(t))
	var want []string
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key%03d", r.Intn(600))
		if ins, err := m.Insert(0, k, []byte(k)); err != nil {
			t.Fatal(err)
		} else if ins {
			want = append(want, k)
		}
	}
	sort.Strings(want)
	keys, vals := m.RangeScan(0, "", "")
	if len(keys) != len(want) {
		t.Fatalf("scan %d keys, want %d", len(keys), len(want))
	}
	for i := range keys {
		if keys[i] != want[i] || string(vals[i]) != want[i] {
			t.Fatalf("scan[%d] = %q/%q, want %q", i, keys[i], vals[i], want[i])
		}
	}
	keys, _ = m.RangeScan(0, "key100", "key300")
	for _, k := range keys {
		if k < "key100" || k >= "key300" {
			t.Fatalf("key %q outside bounds", k)
		}
	}
}

func TestLFSkipListMatchesModel(t *testing.T) {
	sys := newSys(t)
	m := NewLFSkipList(sys)
	model := map[string][]byte{}
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%02d", r.Intn(70))
		switch r.Intn(3) {
		case 0:
			v := []byte(fmt.Sprintf("v%d", i))
			ins, err := m.Insert(0, k, v)
			if err != nil {
				t.Fatal(err)
			}
			if _, present := model[k]; ins == present {
				t.Fatalf("insert(%q)=%v disagrees with model", k, ins)
			}
			if ins {
				model[k] = v
			}
		case 1:
			rm, err := m.Remove(0, k)
			if err != nil {
				t.Fatal(err)
			}
			if _, present := model[k]; rm != present {
				t.Fatalf("remove(%q)=%v disagrees with model", k, rm)
			}
			delete(model, k)
		default:
			_, ok := m.Get(0, k)
			if _, present := model[k]; ok != present {
				t.Fatalf("get(%q)=%v disagrees with model", k, ok)
			}
		}
		if i%251 == 0 {
			sys.Advance()
		}
	}
	if m.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", m.Len(), len(model))
	}
}

func TestLFSkipListConcurrent(t *testing.T) {
	sys := newSys(t)
	m := NewLFSkipList(sys)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				sys.Advance()
			}
		}
	}()
	const threads = 4
	var wg sync.WaitGroup
	liveCounts := make([]int, threads)
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(tid)))
			live := map[string]bool{}
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("t%d-%02d", tid, r.Intn(40))
				if r.Intn(2) == 0 {
					ins, err := m.Insert(tid, key, []byte("v"))
					if err != nil {
						t.Error(err)
						return
					}
					if ins == live[key] {
						t.Errorf("insert(%q) disagreement", key)
						return
					}
					live[key] = true
				} else {
					rm, err := m.Remove(tid, key)
					if err != nil {
						t.Error(err)
						return
					}
					if rm != live[key] {
						t.Errorf("remove(%q) disagreement", key)
						return
					}
					delete(live, key)
				}
			}
			liveCounts[tid] = len(live)
		}(tid)
	}
	wg.Wait()
	close(stop)
	want := 0
	for _, c := range liveCounts {
		want += c
	}
	if m.Len() != want {
		t.Fatalf("Len=%d want %d", m.Len(), want)
	}
	// Bottom-level order invariant.
	keys, _ := m.RangeScan(0, "", "")
	if !sort.StringsAreSorted(keys) {
		t.Fatal("bottom level unsorted")
	}
}

func TestLFSkipListCrashRecovery(t *testing.T) {
	sys := newSys(t)
	m := NewLFSkipList(sys)
	for i := 0; i < 60; i++ {
		if _, err := m.Insert(0, fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		m.Remove(0, fmt.Sprintf("k%03d", i))
	}
	sys.Sync(0)
	m.Insert(0, "doomed", []byte("x"))
	sys.Device().Crash(pmem.CrashDropAll)

	sys2, chunks, err := core.RecoverParallel(sys.Device(), core.Config{ArenaSize: 1 << 24, MaxThreads: 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RecoverLFSkipList(sys2, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 40 {
		t.Fatalf("recovered %d keys, want 40", m2.Len())
	}
	keys, _ := m2.RangeScan(0, "", "")
	if !sort.StringsAreSorted(keys) {
		t.Fatal("recovered index unsorted")
	}
	if m2.Contains(0, "doomed") {
		t.Fatal("unsynced key recovered")
	}
	// Recovered structure keeps working.
	if ins, err := m2.Insert(0, "after", []byte("ok")); err != nil || !ins {
		t.Fatal("post-recovery insert failed")
	}
}

func TestCrashFuzzLFSkipList(t *testing.T) {
	for seed := int64(0); seed < fuzzSeeds; seed++ {
		f := newFuzzEnv(t, seed)
		m := NewLFSkipList(f.sys)
		model := map[string][]byte{}
		states := []string{mapState(model)}
		ops := 400 + f.rng.Intn(300)
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("k%02d", f.rng.Intn(40))
			if f.rng.Intn(2) == 0 {
				val := []byte(fmt.Sprintf("v%d", i))
				ins, err := m.Insert(0, key, val)
				if err != nil {
					t.Fatal(err)
				}
				if ins {
					model[key] = val
				}
			} else {
				if _, err := m.Remove(0, key); err != nil {
					t.Fatal(err)
				}
				delete(model, key)
			}
			states = append(states, mapState(model))
			f.maybeTick(i)
		}
		f.sys.Device().Crash(f.crashMode())
		sys2, payloads, err := core.Recover(f.sys.Device(), f.cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := RecoverLFSkipList(sys2, [][]*core.PBlk{payloads})
		if err != nil {
			t.Fatal(err)
		}
		if stateInPrefixes(mapState(m2.Snapshot(0)), states) < 0 {
			t.Fatalf("lfskiplist seed %d: recovered state is not a prefix state", seed)
		}
	}
}
