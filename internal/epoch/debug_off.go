//go:build !montagedebug

package epoch

// debugAssertf is a no-op in normal builds; build with -tags montagedebug
// to turn accounting-invariant violations into panics (the obs counter
// CPendClampNegative records them either way).
func debugAssertf(format string, args ...any) {}
