package pds

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"montage/internal/core"
	"montage/internal/dcss"
)

// TagLFSkipList is the default tag of LFSkipList payloads.
const TagLFSkipList uint16 = 9

// LFSkipList is a nonblocking ordered Montage map: a lock-free skiplist
// (in the Fraser/Herlihy-Shavit style) whose bottom-level link and mark
// CASes are epoch-verified, so inserts and removes linearize in the
// epoch that labeled their payloads (Section 3.3). It is the
// tree-structured counterpart of LFSet, with O(log n) expected search
// and ordered iteration.
type LFSkipList struct {
	sys  *core.System
	tag  uint16
	head *lfskipNode
	rnd  rand.Source64
	rmu  sync.Mutex
	size atomic.Int64
}

const lfskipMaxLevel = 20

type lfskipNode struct {
	key     string
	payload *core.PBlk
	next    []dcss.Cell[lfskipNode]
	top     int // index of the highest valid level
}

// NewLFSkipList creates an empty nonblocking ordered map with the
// default TagLFSkipList.
func NewLFSkipList(sys *core.System) *LFSkipList { return NewLFSkipListTagged(sys, TagLFSkipList) }

// NewLFSkipListTagged creates an empty nonblocking ordered map whose
// payloads carry tag.
func NewLFSkipListTagged(sys *core.System, tag uint16) *LFSkipList {
	return &LFSkipList{
		sys:  sys,
		tag:  tag,
		head: &lfskipNode{next: make([]dcss.Cell[lfskipNode], lfskipMaxLevel), top: lfskipMaxLevel - 1},
		rnd:  rand.NewSource(0x51c8).(rand.Source64),
	}
}

// RecoverLFSkipList rebuilds the map from recovered payload chunks
// carrying TagLFSkipList.
func RecoverLFSkipList(sys *core.System, chunks [][]*core.PBlk) (*LFSkipList, error) {
	return RecoverLFSkipListTagged(sys, chunks, TagLFSkipList)
}

// RecoverLFSkipListTagged rebuilds the map from payloads carrying tag.
func RecoverLFSkipListTagged(sys *core.System, chunks [][]*core.PBlk, tag uint16) (*LFSkipList, error) {
	m := NewLFSkipListTagged(sys, tag)
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for w, chunk := range chunks {
		wg.Add(1)
		go func(w int, chunk []*core.PBlk) {
			defer wg.Done()
			for _, p := range core.FilterByTag(chunk, tag) {
				key, _, ok := decodeKV(sys.Read(w, p))
				if !ok {
					errs[w] = ErrCorruptPayload
					return
				}
				if !m.insertNode(w, key, p) {
					errs[w] = ErrCorruptPayload // duplicate key in recovery set
					return
				}
			}
		}(w, chunk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *LFSkipList) randLevel() int {
	m.rmu.Lock()
	bits := m.rnd.Uint64()
	m.rmu.Unlock()
	lvl := 0
	for lvl < lfskipMaxLevel-1 && bits&1 == 1 {
		lvl++
		bits >>= 1
	}
	return lvl
}

// find fills preds/succs with the insertion window for key at every
// level, physically unlinking marked nodes along the way. It returns
// the unmarked bottom-level candidate (nil if absent).
func (m *LFSkipList) find(tid int, key string, preds, succs []*lfskipNode) *lfskipNode {
retry:
	for {
		pred := m.head
		for lvl := lfskipMaxLevel - 1; lvl >= 0; lvl-- {
			curr, _ := pred.next[lvl].Load()
			for curr != nil {
				succ, marked := curr.next[lvl].Load()
				for marked {
					// Help unlink the marked node at this level.
					if !pred.next[lvl].CAS(curr, false, succ, false) {
						continue retry
					}
					curr = succ
					if curr == nil {
						break
					}
					succ, marked = curr.next[lvl].Load()
				}
				if curr == nil || curr.key >= key {
					break
				}
				m.sys.Clock().ChargeDRAM(tid, 16)
				pred, curr = curr, succ
			}
			preds[lvl] = pred
			succs[lvl] = curr
		}
		return succs[0]
	}
}

// insertNode links (key, payload) with plain CASes (recovery only; no
// epoch verification needed because no operations are concurrent with
// rebuild). Returns false if the key is already present.
func (m *LFSkipList) insertNode(tid int, key string, p *core.PBlk) bool {
	preds := make([]*lfskipNode, lfskipMaxLevel)
	succs := make([]*lfskipNode, lfskipMaxLevel)
	for {
		if c := m.find(tid, key, preds, succs); c != nil && c.key == key {
			return false
		}
		top := m.randLevel()
		node := &lfskipNode{key: key, payload: p, next: make([]dcss.Cell[lfskipNode], top+1), top: top}
		for lvl := 0; lvl <= top; lvl++ {
			node.next[lvl].Store(succs[lvl], false)
		}
		if !preds[0].next[0].CAS(succs[0], false, node, false) {
			continue
		}
		m.linkUpper(tid, node, preds, succs)
		m.size.Add(1)
		return true
	}
}

// linkUpper links node's levels 1..top after the bottom-level
// linearization (the lock-free skiplist "add" of Herlihy & Shavit,
// chapter 14.4). If the node gets marked for removal at any level, the
// linking stops: the remover owns it now.
func (m *LFSkipList) linkUpper(tid int, node *lfskipNode, preds, succs []*lfskipNode) {
	for lvl := 1; lvl <= node.top; lvl++ {
		for {
			pred, succ := preds[lvl], succs[lvl]
			nsucc, marked := node.next[lvl].Load()
			if marked {
				return
			}
			if succ != nsucc {
				// Repoint our forward pointer at the current window; a
				// failure means a remover marked the level under us.
				if !node.next[lvl].CAS(nsucc, false, succ, false) {
					return
				}
			}
			if pred.next[lvl].CAS(succ, false, node, false) {
				break
			}
			// Window moved: recompute it; bail if the node was removed.
			if c := m.find(tid, node.key, preds, succs); c != node {
				return
			}
		}
	}
}

// Insert adds key=val if absent, reporting whether it inserted. The
// linearizing step is the epoch-verified bottom-level link.
func (m *LFSkipList) Insert(tid int, key string, val []byte) (inserted bool, err error) {
	m.sys.Clock().ChargeOp(tid)
	err = m.sys.DoOpRetry(tid, func(op core.Op) error {
		inserted = false
		var p *core.PBlk
		defer func() {
			if !inserted && p != nil {
				_ = op.PDelete(p)
			}
		}()
		preds := make([]*lfskipNode, lfskipMaxLevel)
		succs := make([]*lfskipNode, lfskipMaxLevel)
		for {
			if c := m.find(tid, key, preds, succs); c != nil && c.key == key {
				return nil // present
			}
			if p == nil {
				var perr error
				p, perr = op.PNewTagged(m.tag, encodeKV(key, val))
				if perr != nil {
					return perr
				}
			}
			top := m.randLevel()
			node := &lfskipNode{key: key, payload: p, next: make([]dcss.Cell[lfskipNode], top+1), top: top}
			for lvl := 0; lvl <= top; lvl++ {
				node.next[lvl].Store(succs[lvl], false)
			}
			swapped, epochOK := dcss.CASVerify(m.sys.Epochs(), op.Epoch(), &preds[0].next[0], succs[0], false, node, false)
			if !epochOK {
				return core.ErrOldSeeNew
			}
			if !swapped {
				continue
			}
			m.linkUpper(tid, node, preds, succs)
			m.size.Add(1)
			inserted = true
			return nil
		}
	})
	return inserted, err
}

// Remove deletes key, reporting whether it was present. The linearizing
// step is the epoch-verified bottom-level mark.
func (m *LFSkipList) Remove(tid int, key string) (removed bool, err error) {
	m.sys.Clock().ChargeOp(tid)
	err = m.sys.DoOpRetry(tid, func(op core.Op) error {
		removed = false
		preds := make([]*lfskipNode, lfskipMaxLevel)
		succs := make([]*lfskipNode, lfskipMaxLevel)
		for {
			victim := m.find(tid, key, preds, succs)
			if victim == nil || victim.key != key {
				return nil
			}
			// Mark the upper levels top-down (plain CAS; not linearizing).
			for lvl := victim.top; lvl >= 1; lvl-- {
				for {
					succ, marked := victim.next[lvl].Load()
					if marked {
						break
					}
					if victim.next[lvl].CAS(succ, false, succ, true) {
						break
					}
				}
			}
			// Bottom-level mark: the epoch-verified linearization point.
			succ, marked := victim.next[0].Load()
			if marked {
				continue // another remover won; re-find (key may be gone)
			}
			swapped, epochOK := dcss.CASVerify(m.sys.Epochs(), op.Epoch(), &victim.next[0], succ, false, succ, true)
			if !epochOK {
				return core.ErrOldSeeNew
			}
			if !swapped {
				continue
			}
			if derr := op.PDelete(victim.payload); derr != nil {
				return derr
			}
			m.size.Add(-1)
			// Best-effort physical unlink.
			m.find(tid, key, preds, succs)
			removed = true
			return nil
		}
	})
	return removed, err
}

// Get returns a copy of the value under key (read-only, no epoch work).
func (m *LFSkipList) Get(tid int, key string) ([]byte, bool) {
	m.sys.Clock().ChargeOp(tid)
	pred := m.head
	for lvl := lfskipMaxLevel - 1; lvl >= 0; lvl-- {
		curr, _ := pred.next[lvl].Load()
		for curr != nil && curr.key < key {
			m.sys.Clock().ChargeDRAM(tid, 16)
			pred = curr
			curr, _ = curr.next[lvl].Load()
		}
		if curr != nil && curr.key == key {
			if _, marked := curr.next[0].Load(); marked {
				return nil, false
			}
			_, v, ok := decodeKV(m.sys.Read(tid, curr.payload))
			if !ok {
				return nil, false
			}
			return append([]byte(nil), v...), true
		}
	}
	return nil, false
}

// Contains reports whether key is present.
func (m *LFSkipList) Contains(tid int, key string) bool {
	_, ok := m.Get(tid, key)
	return ok
}

// RangeScan returns all pairs with from <= key < to, in order (to == ""
// means unbounded). The scan is a bottom-level traversal and is not
// linearizable against concurrent updates.
func (m *LFSkipList) RangeScan(tid int, from, to string) (keys []string, vals [][]byte) {
	m.sys.Clock().ChargeOp(tid)
	curr, _ := m.head.next[0].Load()
	for curr != nil && curr.key < from {
		curr, _ = curr.next[0].Load()
	}
	for curr != nil && (to == "" || curr.key < to) {
		if _, marked := curr.next[0].Load(); !marked {
			_, v, ok := decodeKV(m.sys.Read(tid, curr.payload))
			if ok {
				keys = append(keys, curr.key)
				vals = append(vals, append([]byte(nil), v...))
			}
		}
		curr, _ = curr.next[0].Load()
	}
	return keys, vals
}

// Len returns the number of pairs.
func (m *LFSkipList) Len() int { return int(m.size.Load()) }

// Snapshot returns the contents (tests only; not linearizable).
func (m *LFSkipList) Snapshot(tid int) map[string][]byte {
	out := map[string][]byte{}
	keys, vals := m.RangeScan(tid, "", "")
	for i, k := range keys {
		out[k] = vals[i]
	}
	return out
}
