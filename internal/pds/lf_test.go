package pds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"montage/internal/core"
	"montage/internal/pmem"
)

func TestLFQueueFIFO(t *testing.T) {
	q := NewLFQueue(newSys(t))
	for i := 0; i < 80; i++ {
		if err := q.Enqueue(0, []byte(fmt.Sprintf("x%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 80 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 80; i++ {
		v, ok, err := q.Dequeue(0)
		if err != nil || !ok || string(v) != fmt.Sprintf("x%d", i) {
			t.Fatalf("Dequeue %d = %q ok=%v err=%v", i, v, ok, err)
		}
	}
	if _, ok, _ := q.Dequeue(0); ok {
		t.Fatal("empty dequeue returned ok")
	}
}

func TestLFQueueConcurrentWithEpochAdvances(t *testing.T) {
	sys := newSys(t)
	q := NewLFQueue(sys)
	const producers, perProducer = 4, 150
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				sys.Advance()
			}
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Enqueue(p, []byte(fmt.Sprintf("%d-%d", p, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	lastSeen := map[int]int{}
	count := 0
	for {
		v, ok, err := q.Dequeue(4)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
		var p, i int
		fmt.Sscanf(string(v), "%d-%d", &p, &i)
		if last, seen := lastSeen[p]; seen && i <= last {
			t.Fatalf("producer %d order violated", p)
		}
		lastSeen[p] = i
	}
	if count != producers*perProducer {
		t.Fatalf("dequeued %d items, want %d", count, producers*perProducer)
	}
}

func TestLFQueueCrashRecovery(t *testing.T) {
	sys := newSys(t)
	q := NewLFQueue(sys)
	for i := 0; i < 40; i++ {
		if err := q.Enqueue(0, []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		if _, ok, err := q.Dequeue(0); !ok || err != nil {
			t.Fatal("dequeue failed")
		}
	}
	sys.Sync(0)
	q.Enqueue(0, []byte("doomed")) // unsynced
	sys.Device().Crash(pmem.CrashDropAll)

	sys2, payloads, err := core.Recover(sys.Device(), core.Config{ArenaSize: 1 << 24, MaxThreads: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := RecoverLFQueue(sys2, payloads)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q2.Drain(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 25 {
		t.Fatalf("recovered %d items, want 25", len(got))
	}
	for i, v := range got {
		if string(v) != fmt.Sprintf("v%02d", i+15) {
			t.Fatalf("item %d = %q", i, v)
		}
	}
	// The recovered queue must keep working.
	if err := q2.Enqueue(0, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 26 {
		t.Fatalf("post-recovery Len = %d", q2.Len())
	}
}

func TestLFSetBasics(t *testing.T) {
	s := NewLFSet(newSys(t))
	if s.Contains(0, "a") {
		t.Fatal("empty set contains a")
	}
	if ins, err := s.Insert(0, "a", []byte("1")); err != nil || !ins {
		t.Fatalf("Insert: %v %v", ins, err)
	}
	if ins, _ := s.Insert(0, "a", []byte("2")); ins {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := s.Get(0, "a"); !ok || string(v) != "1" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if rm, err := s.Remove(0, "a"); err != nil || !rm {
		t.Fatalf("Remove: %v %v", rm, err)
	}
	if s.Contains(0, "a") {
		t.Fatal("removed key still present")
	}
	if rm, _ := s.Remove(0, "a"); rm {
		t.Fatal("double remove succeeded")
	}
}

func TestLFSetSortedTraversal(t *testing.T) {
	s := NewLFSet(newSys(t))
	keys := []string{"m", "c", "z", "a", "q"}
	for _, k := range keys {
		if _, err := s.Insert(0, k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	var prev string
	curr, _ := s.head.next.Load()
	for curr != nil {
		if curr.key <= prev {
			t.Fatalf("list unsorted: %q after %q", curr.key, prev)
		}
		prev = curr.key
		curr, _ = curr.next.Load()
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestLFSetConcurrentMatchesModel(t *testing.T) {
	sys := newSys(t)
	s := NewLFSet(sys)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				sys.Advance()
			}
		}
	}()
	// Each thread owns a key range, so a per-thread model is exact.
	const threads = 4
	models := make([]map[string]bool, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			model := map[string]bool{}
			r := rand.New(rand.NewSource(int64(tid)))
			for i := 0; i < 400; i++ {
				key := fmt.Sprintf("t%d-%02d", tid, r.Intn(30))
				if r.Intn(2) == 0 {
					ins, err := s.Insert(tid, key, []byte("v"))
					if err != nil {
						t.Error(err)
						return
					}
					if ins == model[key] {
						t.Errorf("insert(%q)=%v but model says present=%v", key, ins, model[key])
						return
					}
					model[key] = true
				} else {
					rm, err := s.Remove(tid, key)
					if err != nil {
						t.Error(err)
						return
					}
					if rm != model[key] {
						t.Errorf("remove(%q)=%v but model says present=%v", key, rm, model[key])
						return
					}
					delete(model, key)
				}
			}
			models[tid] = model
		}(tid)
	}
	wg.Wait()
	close(stop)
	for tid, model := range models {
		for key := range model {
			if !s.Contains(tid, key) {
				t.Fatalf("key %q missing", key)
			}
		}
	}
}

func TestLFSetCrashRecovery(t *testing.T) {
	sys := newSys(t)
	s := NewLFSet(sys)
	want := map[string][]byte{}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%02d", i)
		v := []byte(fmt.Sprintf("v%d", i))
		if _, err := s.Insert(0, k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%02d", i)
		if _, err := s.Remove(0, k); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	sys.Sync(0)
	s.Insert(0, "unsynced", []byte("x"))
	sys.Device().Crash(pmem.CrashDropAll)

	sys2, chunks, err := core.RecoverParallel(sys.Device(), core.Config{ArenaSize: 1 << 24, MaxThreads: 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RecoverLFSet(sys2, chunks)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.Snapshot(0)
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}
}
