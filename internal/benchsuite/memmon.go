package benchsuite

import (
	"runtime"
	"sync"
	"time"
)

// MemSample is one point of the process-memory curve a suite run
// records alongside each benchmark cell. Sizes come straight from
// runtime.ReadMemStats, so the curve reflects the Go heap the harness
// and the system under test share — the quantity a regression in
// payload lifetime or epoch retention shows up in first.
type MemSample struct {
	UnixMs         int64  `json:"unix_ms"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	SysBytes       uint64 `json:"sys_bytes"`
	NumGC          uint32 `json:"num_gc"`
}

// memMonitor samples the runtime's memory statistics on a fixed
// interval in a background goroutine. Cells bracket their run with
// Mark/Since to carve out their own window of the shared timeline.
type memMonitor struct {
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	mu      sync.Mutex
	samples []MemSample
}

// startMemMonitor begins sampling every interval until Stop.
func startMemMonitor(interval time.Duration) *memMonitor {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	m := &memMonitor{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	m.SampleNow()
	go m.run()
	return m
}

func (m *memMonitor) run() {
	defer close(m.done)
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.SampleNow()
		}
	}
}

// SampleNow takes one sample immediately and returns it.
func (m *memMonitor) SampleNow() MemSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := MemSample{
		UnixMs:         time.Now().UnixMilli(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapInuseBytes: ms.HeapInuse,
		HeapSysBytes:   ms.HeapSys,
		SysBytes:       ms.Sys,
		NumGC:          ms.NumGC,
	}
	m.mu.Lock()
	m.samples = append(m.samples, s)
	m.mu.Unlock()
	return s
}

// Stop halts the background sampler. Idempotent is not needed: the
// suite stops it exactly once, after the last cell.
func (m *memMonitor) Stop() {
	close(m.stop)
	<-m.done
}

// Mark returns a position in the sample timeline; Since(mark) later
// returns a copy of everything recorded from that position on.
func (m *memMonitor) Mark() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.samples)
}

// Since returns the samples recorded at or after mark, always ending
// with a fresh sample so even a sub-interval cell gets a window.
func (m *memMonitor) Since(mark int) []MemSample {
	m.SampleNow()
	m.mu.Lock()
	defer m.mu.Unlock()
	if mark < 0 {
		mark = 0
	}
	if mark > len(m.samples) {
		mark = len(m.samples)
	}
	out := make([]MemSample, len(m.samples)-mark)
	copy(out, m.samples[mark:])
	return out
}

// maxMemPoints bounds the per-row curve so a long run's artifact stays
// small; downsampling keeps the first and last points and strides the
// middle evenly.
const maxMemPoints = 32

func downsample(s []MemSample, max int) []MemSample {
	if max <= 0 || len(s) <= max {
		return s
	}
	out := make([]MemSample, 0, max)
	// Evenly spaced indices over [0, len-1], endpoints included.
	for i := 0; i < max; i++ {
		idx := i * (len(s) - 1) / (max - 1)
		out = append(out, s[idx])
	}
	return out
}

// peakHeapInuse is the memory scalar the regression comparison uses.
func peakHeapInuse(s []MemSample) uint64 {
	var peak uint64
	for _, x := range s {
		if x.HeapInuseBytes > peak {
			peak = x.HeapInuseBytes
		}
	}
	return peak
}
