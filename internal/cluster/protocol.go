package cluster

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"

	"montage/internal/memtext"
)

// Protocol limits, matching internal/server: the proxy must frame
// exactly the byte stream the backends frame, or a disagreement about
// where a request ends would desynchronize every response behind it.
const (
	maxKeyLen = 250
	// maxLineLen bounds one command line; longer lines are unrecoverable
	// framing damage (the request boundary is unknown) and close the
	// connection, exactly as the server does.
	maxLineLen = 8192
	// maxBodyLen bounds one item body the proxy will buffer for
	// forwarding. The backend enforces its own MaxItemSize and answers
	// "object too large"; the proxy's bound only exists so a hostile
	// declared length cannot make it allocate without limit.
	maxBodyLen = 16 << 20
)

// Canonical responses the proxy produces locally (everything else is
// relayed verbatim from a backend).
var (
	respOK          = []byte("OK\r\n")
	respEnd         = []byte("END\r\n")
	respError       = []byte("ERROR\r\n")
	respTooManyConn = []byte("SERVER_ERROR too many connections\r\n")
)

var (
	// errProtocol marks unrecoverable framing damage on the client side.
	errProtocol = errors.New("cluster: protocol framing error")
	// errQuit is the clean "quit" exit from the command loop.
	errQuit = errors.New("cluster: client quit")
	// errNodeDown marks a backend request that failed because its node is
	// dead (or died) and could not be redialed within the retry window.
	errNodeDown = errors.New("cluster: node down")
)

func clientError(msg string) []byte {
	return []byte("CLIENT_ERROR " + msg + "\r\n")
}

func serverError(msg string) []byte {
	return []byte("SERVER_ERROR " + msg + "\r\n")
}

// nodeError is the proxy's answer for a request bound to a dead node.
// It is deliberately a SERVER_ERROR: the history checker treats those
// as non-binding acks, which is exactly right — the write may or may
// not have been applied before the node died, and the proxy never
// resends (a resend could double-apply).
func nodeError(addr string) []byte {
	return serverError("node " + addr + " unavailable")
}

// readLine reads one CRLF-terminated line (tolerating bare LF),
// returning it without the terminator plus the bytes consumed.
func readLine(br *bufio.Reader) ([]byte, int, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, bufio.ErrBufferFull) {
			return nil, len(line), errProtocol
		}
		return nil, len(line), err
	}
	n := len(line)
	line = line[:len(line)-1]
	line = bytes.TrimSuffix(line, []byte("\r"))
	return line, n, nil
}

func hasNoreply(args [][]byte) bool {
	return len(args) > 0 && string(args[len(args)-1]) == "noreply"
}

// validMode reports whether s names a durability-ack mode, mirroring
// server.ParseAckMode (the proxy speaks the extension but holds only
// the name — the semantics live on the backends).
func validMode(s []byte) bool {
	switch string(s) {
	case "buffered", "sync", "epoch_wait", "epochwait", "epoch-wait":
		return true
	}
	return false
}

// storageHead is the routing-relevant prefix of a storage command: the
// proxy needs the key (to pick a node) and the declared body size (to
// stay framed); flags, exptime, and cas travel through verbatim.
type storageHead struct {
	key     string
	bytes   int
	noreply bool
}

// parseStorageHead parses "<key> <flags> <exptime> <bytes> [casid]
// [noreply]" fields (verb already stripped, borrowed from the reader's
// buffer) just far enough to route and frame. The key is materialized:
// routing happens after the body read clobbers the buffer the fields
// alias.
func parseStorageHead(fields [][]byte, wantCAS bool) (storageHead, error) {
	var h storageHead
	n := 4
	if wantCAS {
		n = 5
	}
	if len(fields) == n+1 && string(fields[n]) == "noreply" {
		h.noreply = true
		fields = fields[:n]
	}
	if len(fields) != n {
		return h, fmt.Errorf("bad command line format")
	}
	if !memtext.ValidKey(fields[0]) {
		return h, fmt.Errorf("bad key")
	}
	h.key = string(fields[0])
	sz, ok := memtext.ParseUint(fields[3], 31)
	if !ok {
		return h, fmt.Errorf("bad data length")
	}
	h.bytes = int(sz)
	return h, nil
}
