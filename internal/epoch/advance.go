package epoch

import (
	"runtime"
	"time"

	"montage/internal/obs"
	"montage/internal/simclock"
)

// Advance performs one epoch advance, charged to the background thread.
// Tests and manually driven systems call it directly; benchmark
// configurations trigger it from operation boundaries or a real-time
// daemon. Under the nonblocking engine the call is one helping attempt:
// it drains staged work and tries to CAS-publish the next clock value;
// losing the CAS still means the clock moved (a racing helper won), so a
// single call always observes the epoch advance by at least one.
func (s *Sys) Advance() {
	if !s.cfg.BlockingAdvance {
		s.advanceNB(simclock.DaemonTID)
		return
	}
	rec := s.stats.Get()
	lockStart := rec.Start()
	s.advMu.Lock()
	rec.ObserveSince(simclock.DaemonTID, obs.HAdvLockWaitNs, lockStart)
	s.advanceLocked(simclock.DaemonTID)
	s.advMu.Unlock()
}

// advanceLocked implements the paper's advance_epoch: with the clock at
// curr it (1) waits until no operation is active in epoch curr-1,
// (2) reclaims payloads scheduled for epoch curr-2 (background
// reclamation mode), (3) writes back all payloads of epoch curr-1,
// (4) waits for the writes-back to complete, and (5) publishes and
// persists the new clock value. Callers hold advMu.
func (s *Sys) advanceLocked(chargeTid int) {
	rec := s.stats.Get()
	curr := s.epoch.Load()
	advStart := rec.Start()
	rec.Trace(chargeTid, obs.TraceAdvanceStart, curr, 0)
	if s.clk != nil && chargeTid == simclock.DaemonTID {
		// The daemon wakes up "now": align its virtual clock with the
		// workers before charging it for boundary work.
		s.clk.SetAtLeast(simclock.DaemonTID, s.clk.Max())
	}

	// (1) Quiescence: no operation may still be active in epoch curr-1.
	waitStart := rec.Start()
	s.waitAll(curr - 1)
	rec.ObserveSince(chargeTid, obs.HWaitAllNs, waitStart)

	if !s.cfg.Transient {
		// (2) Reclaim epoch curr-2's deleted payloads (unless workers do
		// it themselves or the unsafe DirectFree mode is active).
		if !s.cfg.LocalFree && !s.cfg.DirectFree && curr >= 2 {
			for tid := range s.threads {
				s.reclaimSlot(chargeTid, &s.threads[tid], curr-2)
			}
		}

		// (3) Write back every remaining payload of epoch curr-1. The
		// mindicator tells us, in O(1), whether any thread still holds
		// unpersisted payloads that old; when none does (frequent under
		// sync-heavy loads, where helping has already drained the
		// buffers), the whole scan is skipped — the paper's use of the
		// mindicator to keep sync cheap.
		if oldest := s.mind.Min(); s.cfg.DisableMindicator || oldest <= int64(curr-1) {
			// Scanning every thread's tracker slot and container labels is
			// real work on the advancing thread — exactly the work the
			// mindicator's O(1) answer avoids when nothing old is pending.
			rec.Inc(chargeTid, obs.CMindicatorScans)
			s.clk.ChargeDRAM(chargeTid, len(s.threads)*4*16)
			for tid := range s.threads {
				s.drainPersist(chargeTid, &s.threads[tid], tid, curr-1)
			}
		} else {
			rec.Inc(chargeTid, obs.CMindicatorSkips)
		}

		// (4) Wait for all write-backs — including incremental ones issued
		// by the workers — to reach the persistence domain. On the
		// simulated device the drain is free in wall-clock time; an
		// optional emulated persist latency stands in for the real fence
		// round trip when wall-clock consumers ask for it.
		s.dev.Drain(chargeTid)
		if s.cfg.PersistDelay > 0 {
			time.Sleep(s.cfg.PersistDelay)
		}
	}

	// (5) Persist, then publish, the new clock value — in that order. The
	// durability watermark (PersistedEpoch, and every sync/epoch-wait ack
	// riding it) derives from the volatile clock, so the durable clock
	// must commit FIRST: publishing before the commit opens a window in
	// which a waiter observes epoch curr-1 as durable and acks a client,
	// yet a crash still recovers with durable clock curr and cutoff
	// curr-2, discarding the acked epoch. (The chaos harness's mid-advance
	// schedules catch exactly this inversion; see
	// TestAdvancePublishesDurableClockFirst.) With this order, a crash
	// between the two steps merely leaves a durable clock one ahead of
	// anything announced — epoch curr-1's payloads were already drained
	// above, so the higher cutoff is safe.
	if !s.cfg.Transient {
		s.writeClock(chargeTid, curr+1)
	}
	s.epoch.Store(curr + 1)
	if s.clk != nil {
		s.lastAdvV.Store(s.clk.Max())
	}
	s.lastAdvOps.Store(s.opCount.Load())
	s.lastAdvPls.Store(s.plCount.Load())
	s.advances.Add(1)
	// Persist tick: epoch curr-1 just became durable. Wake every
	// PersistTick/WaitPersisted subscriber by closing the broadcast
	// channel and installing a fresh one.
	s.persistMu.Lock()
	close(s.persistCh)
	s.persistCh = make(chan struct{})
	s.persistMu.Unlock()
	rec.Inc(chargeTid, obs.CEpochAdvances)
	rec.ObserveSince(chargeTid, obs.HAdvanceNs, advStart)
	rec.Trace(chargeTid, obs.TraceAdvanceEnd, curr+1, 0)
}

// waitAll spins until no operation is active in any epoch <= e. A
// stalled operation can delay this indefinitely — the paper accepts that
// the persistence frontier is blocked by stalled threads — but cannot
// block other workers' operations.
func (s *Sys) waitAll(e uint64) {
	if e == 0 {
		return
	}
	for i := range s.threads {
		for {
			a := s.threads[i].active.Load()
			if a == 0 || a > e {
				break
			}
			runtime.Gosched()
		}
	}
}

// drainPersist writes back every queued payload of epoch e for thread
// slot ts, charging chargeTid (the boundary writer: daemon, advancing
// worker, or sync caller).
func (s *Sys) drainPersist(chargeTid int, ts *threadState, owner int, e uint64) {
	pb := &ts.persist[e%4]
	pb.mu.Lock()
	if pb.label != e || len(pb.entries) == 0 {
		pb.mu.Unlock()
		return
	}
	entries := pb.entries
	pb.entries = nil
	pb.mu.Unlock()
	for _, p := range entries {
		s.clk.ChargeDRAM(chargeTid, 16) // container entry bookkeeping
		s.flushOne(chargeTid, p, obs.CPersistBoundary)
	}
	ts.mindMu.Lock()
	if ts.pendEpoch[e%4] == e {
		ts.pendCount[e%4] -= len(entries)
		if ts.pendCount[e%4] < 0 {
			// The pending mirror and the container disagree: the
			// mindicator may now claim old payloads exist when none do
			// (harmless) or, worse, the inverse on some other path. Count
			// it so chaos runs surface accounting bugs instead of
			// silently masking them; debug builds (-tags montagedebug)
			// fail fast.
			ts.pendCount[e%4] = 0
			s.stats.Get().Inc(chargeTid, obs.CPendClampNegative)
			debugAssertf("epoch: pendCount for epoch %d went negative in boundary drain", e)
		}
	}
	s.updateMindLocked(ts, owner)
	ts.mindMu.Unlock()
}

// reclaimSlot frees thread ts's to_free entries labeled epoch e. Before a
// block is returned to the allocator its header is durably invalidated
// (staged here, committed by the advance's Drain), so a freed payload can
// never be resurrected by a later recovery sweep. The invalidation is
// batched off the worker critical path, preserving Ralloc's fence-free
// deallocation property where it matters.
func (s *Sys) reclaimSlot(chargeTid int, ts *threadState, e uint64) {
	if e == 0 {
		return
	}
	fb := &ts.free[e%4]
	fb.mu.Lock()
	if fb.label != e || len(fb.addrs) == 0 {
		fb.mu.Unlock()
		return
	}
	addrs := fb.addrs
	fb.addrs = nil
	fb.mu.Unlock()
	var zero [8]byte
	for _, addr := range addrs {
		if err := s.dev.WriteBack(chargeTid, addr, zero[:]); err != nil {
			panic("epoch: header invalidation failed: " + err.Error())
		}
		s.heap.Free(chargeTid, addr)
	}
	s.stats.Get().Add(chargeTid, obs.CFreeReclaimed, uint64(len(addrs)))
}

// freeLocal is the worker-side reclamation path (Buf+LocalFree): at the
// start of an operation in epoch e, the worker reclaims its own to_free
// slots for every epoch <= e-2 (paper Figure 3, lines 28-31), then fences
// the header invalidations.
func (s *Sys) freeLocal(tid int, e uint64) {
	if e < 2 {
		return
	}
	ts := &s.threads[tid]
	n := 0
	for slot := 0; slot < 4; slot++ {
		fb := &ts.free[slot]
		fb.mu.Lock()
		label := fb.label
		ok := label != 0 && label <= e-2 && len(fb.addrs) > 0
		fb.mu.Unlock()
		if ok {
			s.reclaimSlot(tid, ts, label)
			n++
		}
	}
	if n > 0 {
		s.dev.Fence(tid)
	}
}

// Sync implements the paper's sync operation: it requests and waits for a
// two-epoch advance, so that every operation that completed before the
// call is durable when Sync returns. The caller performs the advances
// itself — helping write back its peers' buffers — which is what makes
// Montage's sync fast. Sync must not be called between BeginOp and EndOp.
func (s *Sys) Sync(tid int) {
	if s.cfg.Transient {
		return
	}
	rec := s.stats.Get()
	syncStart := rec.Start()
	rec.Trace(tid, obs.TraceSyncStart, s.epoch.Load(), 0)
	s.syncActive.Add(1)
	target := s.epoch.Load() + 2
	if !s.cfg.BlockingAdvance {
		// Helping sync: every attempt either wins the clock CAS, loses it
		// to a racing helper (the clock moved anyway), or aborts on the
		// dirty-backlog gate because a straddler's same-epoch update has
		// not reached its deferred encode yet. The first two are
		// system-wide progress, so absent straddlers the loop is bounded
		// by two plus the number of concurrent advances; a gate abort
		// waits out the straddling operation — the one place the lazy
		// persist path trades the blocking engine's lock queue for a
		// bounded-by-op-length spin.
		for s.epoch.Load() < target {
			if !s.advanceNB(tid) && s.epoch.Load() < target {
				runtime.Gosched()
			}
		}
	} else {
		for s.epoch.Load() < target {
			lockStart := rec.Start()
			s.advMu.Lock()
			rec.ObserveSince(tid, obs.HAdvLockWaitNs, lockStart)
			if s.epoch.Load() < target {
				s.advanceLocked(tid)
			}
			s.advMu.Unlock()
		}
	}
	s.syncActive.Add(-1)
	rec.Inc(tid, obs.CEpochSyncs)
	rec.ObserveSince(tid, obs.HSyncNs, syncStart)
	rec.Trace(tid, obs.TraceSyncEnd, s.epoch.Load(), 0)
}

// ResetVirtualTimer zeroes the virtual-time advance reference. The
// benchmark harness calls it after resetting the virtual clock so that
// worker-triggered advances keep firing on the new timeline.
func (s *Sys) ResetVirtualTimer() { s.lastAdvV.Store(0) }

// startDaemon launches the real-time epoch-advancing goroutine.
func (s *Sys) startDaemon() {
	s.daemonStop = make(chan struct{})
	s.daemonDone = make(chan struct{})
	go func() {
		defer close(s.daemonDone)
		t := time.NewTicker(s.cfg.EpochLength)
		defer t.Stop()
		for {
			select {
			case <-s.daemonStop:
				return
			case <-t.C:
				s.Advance()
			}
		}
	}()
}

// Close stops the background daemon, if any, and performs two final
// advances so that all completed work is durable — the shutdown analogue
// of sync. It then releases any remaining WaitPersisted waiters: the
// clock will never move again.
func (s *Sys) Close() {
	s.stopDaemon()
	if !s.cfg.Transient {
		s.Advance()
		s.Advance()
	}
	s.markDown()
}

// Abandon stops the background daemon, if any, WITHOUT the final
// advances Close performs. It is the teardown for a system whose device
// has crashed (or is about to be crashed deliberately): the stale
// system's buffers must never be flushed onto a device that recovery is
// rebuilding, and its clock must never overwrite the recovered one.
// Waiters parked in WaitPersisted are released — with the daemon gone and
// the system dropped, no persist tick will ever come, and before this
// broadcast a waiter with a nil abort channel hung forever on crash
// teardown (see TestWaitPersistedReleasedOnTeardown). After Abandon the
// system must simply be dropped.
func (s *Sys) Abandon() {
	s.stopDaemon()
	s.markDown()
}

// stopDaemon stops the background advance goroutine, if running.
func (s *Sys) stopDaemon() {
	if s.daemonStop != nil {
		close(s.daemonStop)
		<-s.daemonDone
		s.daemonStop = nil
	}
}

// PendingPersist returns the number of queued (unpersisted) payloads for
// thread tid across all epoch slots. It reads the pending-entry mirror
// that already feeds the mindicator, so it takes one lock instead of
// four and is exactly the quantity the mindicator summarizes.
func (s *Sys) PendingPersist(tid int) int {
	ts := &s.threads[tid]
	ts.mindMu.Lock()
	n := 0
	for slot := 0; slot < 4; slot++ {
		n += ts.pendCount[slot]
	}
	ts.mindMu.Unlock()
	return n
}

// PendingFree returns the number of blocks awaiting reclamation for
// thread tid.
func (s *Sys) PendingFree(tid int) int {
	ts := &s.threads[tid]
	n := 0
	for slot := 0; slot < 4; slot++ {
		fb := &ts.free[slot]
		fb.mu.Lock()
		n += len(fb.addrs)
		fb.mu.Unlock()
	}
	return n
}
