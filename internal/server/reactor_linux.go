//go:build linux

package server

import (
	"net"
	"runtime"
	"sync"
	"syscall"
	"unsafe"

	"montage/internal/obs"
)

// Epoll event masks. syscall.EPOLLET is a negative untyped constant on
// linux/amd64; build the uint32 bit explicitly.
const (
	evIn  = uint32(syscall.EPOLLIN)
	evOut = uint32(syscall.EPOLLOUT)
	evHup = uint32(syscall.EPOLLRDHUP) | uint32(syscall.EPOLLERR) | uint32(syscall.EPOLLHUP)
	evET  = uint32(1) << 31
)

// rawConnState is the linux half of conn: the writev iovec scratch.
type rawConnState struct {
	iovecs []syscall.Iovec
}

// reactorState is the linux half of Server: the lazily started epoll
// reactor shared by every raw connection.
type reactorState struct {
	reactorOnce sync.Once
	reactorRef  *reactor
}

// reactor multiplexes every accepted TCP connection on one epoll
// instance. A single poller goroutine turns readiness edges into pump
// jobs executed by a small worker pool borrowing Montage thread ids per
// burst, so at 10k idle connections the server holds 10k registered
// fds but only O(cores) goroutines — no per-connection reader, no
// per-connection writer.
type reactor struct {
	srv    *Server
	epfd   int
	mu     sync.Mutex
	conns  map[int]*conn
	pumpq  chan *conn
	closed bool
}

func pumpWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	if n > 16 {
		n = 16
	}
	return n
}

// startReactor lazily builds the server's reactor (first raw conn).
func (s *Server) startReactor() *reactor {
	s.reactorOnce.Do(func() {
		epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
		if err != nil {
			return
		}
		r := &reactor{
			srv:   s,
			epfd:  epfd,
			conns: make(map[int]*conn),
			pumpq: make(chan *conn, 4096),
		}
		for i := 0; i < pumpWorkers(); i++ {
			go r.pumpWorker()
		}
		go r.poll()
		s.reactorRef = r
	})
	return s.reactorRef
}

// tryRawConn moves a freshly accepted TCP connection onto the reactor.
// Returns false (caller falls back to the blocking driver) for non-TCP
// conns or if the reactor could not start.
func (s *Server) tryRawConn(c *conn) bool {
	tc, ok := c.nc.(*net.TCPConn)
	if !ok {
		return false
	}
	rc, err := tc.SyscallConn()
	if err != nil {
		return false
	}
	fd := -1
	if cerr := rc.Control(func(f uintptr) { fd = int(f) }); cerr != nil || fd < 0 {
		return false
	}
	r := s.startReactor()
	if r == nil {
		return false
	}
	c.raw = true
	c.fd = fd
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		c.raw = false
		return false
	}
	r.conns[fd] = c
	r.mu.Unlock()
	ev := syscall.EpollEvent{Events: evIn | evOut | evHup | evET, Fd: int32(fd)}
	if err := syscall.EpollCtl(r.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		r.mu.Lock()
		delete(r.conns, fd)
		r.mu.Unlock()
		c.raw = false
		return false
	}
	return true
}

// reactorDel unregisters a connection before its fd closes.
func (s *Server) reactorDel(c *conn) {
	r := s.reactorRef
	if r == nil {
		return
	}
	syscall.EpollCtl(r.epfd, syscall.EPOLL_CTL_DEL, c.fd, nil)
	r.mu.Lock()
	delete(r.conns, c.fd)
	r.mu.Unlock()
}

// rearmWrite re-registers interest after a writev EAGAIN. With
// edge-triggered epoll, a writability edge landing between the EAGAIN
// and wantWrite being set would be dropped by noteWritable; EPOLL_CTL_MOD
// re-delivers the edge if the socket is already writable again.
func (s *Server) rearmWrite(c *conn) {
	r := s.reactorRef
	if r == nil {
		return
	}
	ev := syscall.EpollEvent{Events: evIn | evOut | evHup | evET, Fd: int32(c.fd)}
	syscall.EpollCtl(r.epfd, syscall.EPOLL_CTL_MOD, c.fd, &ev)
}

// closeReactor stops the poller and workers (Shutdown).
func (s *Server) closeReactor() {
	r := s.reactorRef
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.pumpq)
	syscall.Close(r.epfd)
}

// poll is the single event loop: readable edges schedule pumps,
// writable edges resume EAGAIN-parked flushes. The wait uses a finite
// timeout because closing an epoll fd does not wake epoll_wait.
func (r *reactor) poll() {
	events := make([]syscall.EpollEvent, 128)
	for {
		n, err := syscall.EpollWait(r.epfd, events, 500)
		if err == syscall.EINTR {
			continue
		}
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if closed || err != nil {
			return
		}
		for i := 0; i < n; i++ {
			fd := int(events[i].Fd)
			r.mu.Lock()
			c := r.conns[fd]
			r.mu.Unlock()
			if c == nil {
				continue
			}
			ev := events[i].Events
			if ev&evOut != 0 {
				c.noteWritable()
			}
			if ev&(evIn|evHup) != 0 {
				c.schedulePump()
			}
		}
	}
}

func (r *reactor) pumpWorker() {
	for c := range r.pumpq {
		c.pump()
	}
}

// schedulePump hands the connection to a pump worker, coalescing edges
// that land while a pump is already running.
func (c *conn) schedulePump() {
	c.wmu.Lock()
	if c.dead || c.closing || c.readParked {
		c.wmu.Unlock()
		return
	}
	if c.pumpRunning {
		c.pumpAgain = true
		c.wmu.Unlock()
		return
	}
	c.pumpRunning = true
	c.wmu.Unlock()
	r := c.srv.reactorRef
	if r == nil {
		go c.pump()
		return
	}
	select {
	case r.pumpq <- c:
	default:
		go c.pump()
	}
}

// noteWritable resumes a flush parked on EAGAIN.
func (c *conn) noteWritable() {
	c.wmu.Lock()
	if !c.wantWrite {
		c.wmu.Unlock()
		return
	}
	c.wantWrite = false
	c.scheduleFlushLocked()
	c.wmu.Unlock()
}

// pump drains the socket: borrow an exec tid, read+ingest until EAGAIN
// (or EOF/error/throttle), return the tid. Loops while coalesced edges
// are queued.
func (c *conn) pump() {
	for {
		tid := <-c.srv.tids
		again := c.pumpOnce(tid)
		c.srv.tids <- tid
		if !again {
			return
		}
	}
}

// pumpStop clears the running flag and finalizes if this was the last
// activity on a dead connection.
func (c *conn) pumpStop() {
	c.wmu.Lock()
	c.pumpAgain = false
	c.pumpRunning = false
	fin := c.maybeFinalizeLocked()
	c.wmu.Unlock()
	if fin {
		c.finalize()
	}
}

// pumpDone is the EAGAIN exit: if an edge was coalesced while we ran,
// report that another pass is needed (keeping pumpRunning claimed).
func (c *conn) pumpDone() bool {
	c.wmu.Lock()
	if c.pumpAgain && !c.dead && !c.closing && !c.readParked {
		c.pumpAgain = false
		c.wmu.Unlock()
		return true
	}
	c.pumpAgain = false
	c.pumpRunning = false
	fin := c.maybeFinalizeLocked()
	c.wmu.Unlock()
	if fin {
		c.finalize()
	}
	return false
}

// pumpIngest runs the parser over buffered input. Returns false when
// the pump must stop (throttle park, quit, fatal protocol error) —
// all cleanup already done.
func (c *conn) pumpIngest(tid int) bool {
	err := c.ingest(tid)
	switch err {
	case nil:
		return true
	case errThrottle:
		c.wmu.Lock()
		if c.qlen >= pipelineCap/2 && !c.dead && !c.closing {
			// Park reading; the flusher resumes us below half.
			c.readParked = true
			c.pumpAgain = false
			c.pumpRunning = false
			c.wmu.Unlock()
			return false
		}
		c.wmu.Unlock() // already drained; keep going
		return true
	default:
		c.pumpStop()
		c.closeSoon()
		return false
	}
}

func (c *conn) pumpOnce(tid int) bool {
	rec := c.srv.rec
	for {
		c.wmu.Lock()
		stop := c.dead || c.closing || c.readParked
		c.wmu.Unlock()
		if stop {
			c.pumpStop()
			return false
		}
		if len(c.in) > 0 && !c.pumpIngest(tid) {
			return false
		}
		c.ensureSpare(readChunk)
		n, err := syscall.Read(c.fd, c.in[len(c.in):cap(c.in)])
		switch {
		case n > 0:
			rec.Add(c.rtid, obs.CNetBytesIn, uint64(n))
			c.in = c.in[:len(c.in)+n]
			if !c.pumpIngest(tid) {
				return false
			}
		case n == 0 && err == nil:
			c.pumpStop()
			c.closeSoon()
			return false
		default:
			switch err {
			case syscall.EAGAIN:
				return c.pumpDone()
			case syscall.EINTR:
				continue
			default:
				c.pumpStop()
				c.abort()
				return false
			}
		}
	}
}

// flushRaw drains the settled prefix of the write queue with vectored
// writes. Exactly one flushRaw owns a connection at a time
// (flushActive); it loops until the queue has nothing flushable, the
// socket blocks (EAGAIN → EPOLLOUT resumes), or the connection dies.
func (c *conn) flushRaw() {
	rec := c.srv.rec
	for {
		c.wmu.Lock()
		if c.dead {
			c.flushActive = false
			fin := c.maybeFinalizeLocked()
			c.wmu.Unlock()
			if fin {
				c.finalize()
			}
			return
		}
		c.iov = c.iov[:0]
		total := 0
		nb := 0
		for p := c.qhead; p != nil && p.nwait == 0 && nb < maxFlushBatch; p = p.next {
			d := p.data
			if nb == 0 && c.woff > 0 {
				d = d[c.woff:]
			}
			if len(d) > 0 {
				c.iov = append(c.iov, d)
				total += len(d)
			}
			nb++
		}
		if total == 0 {
			c.flushActive = false
			if c.closing && c.qhead == nil {
				c.dead = true
			}
			fin := c.maybeFinalizeLocked()
			c.wmu.Unlock()
			if fin {
				c.finalize()
			}
			return
		}
		c.wmu.Unlock()

		n, werr := c.writevRaw(c.iov)
		if n > 0 {
			rec.Add(c.rtid, obs.CNetBytesOut, uint64(n))
			rec.Inc(c.rtid, obs.CNetFlushes)
			rec.Observe(c.rtid, obs.HFlushBytes, uint64(n))
		}

		c.wmu.Lock()
		if c.dead { // abort cleared the queue under us
			c.flushActive = false
			fin := c.maybeFinalizeLocked()
			c.wmu.Unlock()
			if fin {
				c.finalize()
			}
			return
		}
		c.batch = c.batch[:0]
		rem := n
		for rem > 0 && c.qhead != nil {
			p := c.qhead
			avail := len(p.data) - c.woff
			if rem < avail {
				c.woff += rem
				rem = 0
				break
			}
			rem -= avail
			c.woff = 0
			c.qhead = p.next
			p.next = nil
			c.qlen--
			c.batch = append(c.batch, p)
		}
		if c.qhead == nil {
			c.qtail = nil
		}
		if len(c.batch) > 0 {
			rec.Observe(c.rtid, obs.HFlushBatch, uint64(len(c.batch)))
		}
		resume := c.readParked && c.qlen <= pipelineCap/2 && !c.closing
		if resume {
			c.readParked = false
		}
		again := werr == syscall.EAGAIN
		if again {
			c.wantWrite = true
			c.flushActive = false
		}
		c.wmu.Unlock()

		for i, p := range c.batch {
			releasePending(p)
			c.batch[i] = nil
		}
		if resume {
			c.schedulePump()
		}
		if werr != nil {
			if again {
				// Close the edge-race window (see rearmWrite).
				c.srv.rearmWrite(c)
				return
			}
			c.abort()
			return
		}
	}
}

// writevRaw issues one writev(2) over bufs using per-conn iovec
// scratch. EAGAIN writes nothing; partial writes return with nil error
// and the caller re-batches.
func (c *conn) writevRaw(bufs [][]byte) (int, error) {
	if cap(c.rw.iovecs) < len(bufs) {
		c.rw.iovecs = make([]syscall.Iovec, 0, len(bufs)+8)
	}
	iv := c.rw.iovecs[:0]
	for _, b := range bufs {
		iv = append(iv, syscall.Iovec{Base: &b[0], Len: uint64(len(b))})
	}
	c.rw.iovecs = iv
	for {
		n, _, errno := syscall.Syscall(syscall.SYS_WRITEV, uintptr(c.fd),
			uintptr(unsafe.Pointer(&iv[0])), uintptr(len(iv)))
		runtime.KeepAlive(bufs)
		switch errno {
		case 0:
			return int(n), nil
		case syscall.EINTR:
			continue
		default:
			return 0, errno
		}
	}
}
