package obs

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"reflect"
)

// This file is the live half of the metrics pipeline: the same Snapshot
// (or Merge of per-shard snapshots) that feeds the JSONL sampler and the
// BENCH artifacts is rendered in the Prometheus text exposition format
// (version 0.0.4), so a scraper pointed at a running montage-serve,
// montage-load, or suite run sees exactly the numbers the offline
// artifacts record.
//
// Naming: every counter becomes montage_<group>_<name>_total, derived
// gauges (pending work, blocks in use) become montage_<group>_<name>,
// and each log2 latency histogram becomes a cumulative-bucket histogram
// montage_latency_<name> with le bounds at the bucket upper bounds.

// promGauges lists the Snapshot fields that are derived point-in-time
// values rather than monotonic counters; they are exported as gauges.
var promGauges = map[string]bool{
	"persist_pending": true,
	"blocks_in_use":   true,
	"bytes_in_use":    true,
}

// promHistNames maps every histogram to its metric-name stem, matching
// the LatencyStats JSON tags.
var promHistNames = [numHists]string{
	HAdvanceNs:     "advance_ns",
	HWaitAllNs:     "wait_all_ns",
	HSyncNs:        "sync_ns",
	HFenceBatch:    "fence_batch",
	HDrainBatch:    "drain_batch",
	HCombineRatio:  "combine_ratio_x100",
	HDrainWorkers:  "drain_workers",
	HAckSyncNs:     "ack_sync_ns",
	HAckEpochNs:    "ack_epoch_wait_ns",
	HPipelineDepth: "pipeline_depth",
	HLoadNs:        "load_ns",
	HFlushBatch:    "flush_batch",
	HFlushBytes:    "flush_bytes",
}

// WritePrometheus renders s in the Prometheus text exposition format.
// Histogram series need the snapshot's raw buckets, which every
// Snapshot/Sub/Merge result carries; a zero Snapshot emits counters
// only.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	groups := []struct {
		name string
		v    any
	}{
		{"epoch", s.Epoch},
		{"device", s.Device},
		{"runtime", s.Runtime},
		{"alloc", s.Alloc},
		{"server", s.Server},
		{"chaos", s.Chaos},
		{"load", s.Load},
		{"cluster", s.Cluster},
	}
	for _, g := range groups {
		rv := reflect.ValueOf(g.v)
		rt := rv.Type()
		for i := 0; i < rt.NumField(); i++ {
			tag := rt.Field(i).Tag.Get("json")
			if tag == "" || rt.Field(i).Type.Kind() != reflect.Uint64 {
				continue
			}
			val := rv.Field(i).Uint()
			name := fmt.Sprintf("montage_%s_%s", g.name, tag)
			if promGauges[tag] {
				fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, val)
			} else {
				fmt.Fprintf(bw, "# TYPE %s_total counter\n%s_total %d\n", name, name, val)
			}
		}
	}
	if s.raw != nil {
		for h := 0; h < int(numHists); h++ {
			rh := &s.raw.hists[h]
			name := "montage_latency_" + promHistNames[h]
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			var cum uint64
			for b := 0; b < histBuckets; b++ {
				if rh.buckets[b] == 0 {
					continue
				}
				cum += rh.buckets[b]
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, bucketBound(b), cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, rh.count)
			fmt.Fprintf(bw, "%s_sum %d\n", name, rh.sum)
			fmt.Fprintf(bw, "%s_count %d\n", name, rh.count)
		}
	}
	return bw.Flush()
}

// MetricsHandler returns an http.Handler serving snap() as Prometheus
// text format. snap is typically a Recorder.Snapshot method value, or a
// closure merging per-shard snapshots.
func MetricsHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, snap())
	})
}

// MetricsServer is the opt-in observability endpoint behind the
// -metrics-addr flags: /metrics (Prometheus), /debug/vars (expvar), and
// /debug/pprof/* (net/http/pprof) on one listener.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeMetrics binds addr (":0" picks a free port) and serves the
// observability endpoints in the background until Close.
func ServeMetrics(addr string, snap func() Snapshot) (*MetricsServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(snap))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	ms := &MetricsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go ms.srv.Serve(ln)
	return ms, nil
}

// Addr returns the bound listener address.
func (m *MetricsServer) Addr() net.Addr { return m.ln.Addr() }

// Close stops the listener and any in-flight handlers.
func (m *MetricsServer) Close() error { return m.srv.Close() }
