package server

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"time"
)

// Repro: blocking driver, client pipelines > pipelineCap commands in
// one burst, then waits for all responses.
func TestReproThrottleStall(t *testing.T) {
	srv := newTestServer(t)
	cl, sv := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.serveConn(sv, 0)
	}()
	const n = pipelineCap + 40
	var req bytes.Buffer
	for i := 0; i < n; i++ {
		req.WriteString("get k\r\n")
	}
	go cl.Write(req.Bytes())
	br := bufio.NewReader(cl)
	got := 0
	errc := make(chan error, 1)
	go func() {
		for got < n {
			_, err := br.ReadString('\n')
			if err != nil {
				errc <- err
				return
			}
			got++
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("read error after %d responses: %v", got, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("stalled: got %d of %d responses", got, n)
	}
	cl.Close()
	<-done
}
