package server

import (
	"net"
	"strconv"
	"testing"
	"time"

	"montage/internal/pool"
)

// expectNoLine asserts that no response arrives within the window — the
// probe for an ack that must still be parked.
func (tc *testClient) expectNoLine(window time.Duration) {
	tc.t.Helper()
	tc.c.SetReadDeadline(time.Now().Add(window))
	b, err := tc.br.ReadByte()
	if err == nil {
		tc.t.Fatalf("expected parked ack, got response byte %q", b)
	}
	if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		tc.t.Fatalf("expected read timeout, got %v", err)
	}
}

// TestFlushAllEpochWaitAllShards pins the multi-tag durability contract
// of flush_all: under epoch-wait the ack parks until the flush's epoch
// persists on EVERY touched shard, not just the first tag's. The epoch
// length is an hour so only the test's explicit advances move any
// clock, and the per-shard clocks are skewed first so a single-shard
// wait cannot accidentally cover the others.
func TestFlushAllEpochWaitAllShards(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4, EpochLength: time.Hour, AllowCrash: true})
	c := dialPipe(t, s, 0)

	// Skew the shard clocks so the flush's tags sit at distinct epochs.
	s.mu.RLock()
	p := s.cur.pool
	s.mu.RUnlock()
	for i := 0; i < 3; i++ {
		p.Shard(1).Advance()
	}
	p.Shard(2).Advance()

	// Buffered writes across all four shards.
	covered := make(map[int]bool)
	keys := make([]string, 0, 24)
	for i := 0; len(covered) < 4 || i < 24; i++ {
		k := "flushkey-" + strconv.Itoa(i)
		keys = append(keys, k)
		covered[pool.ShardForKey(k, 4)] = true
		c.send("set %s 0 0 2\r\nvv\r\n", k)
		c.expect("STORED")
	}

	c.send("durability epoch-wait\r\n")
	c.expect("OK")
	c.send("flush_all\r\n")

	// Persisting only shard 0's epoch must NOT release the ack: the
	// flush deleted keys on every shard.
	for i := 0; i < 3; i++ {
		p.Shard(0).Advance()
	}
	c.expectNoLine(200 * time.Millisecond)

	// Once every shard's clock has moved past the flush epoch, the
	// parked ack drains.
	for sh := 1; sh < 4; sh++ {
		for i := 0; i < 3; i++ {
			p.Shard(sh).Advance()
		}
	}
	c.expect("OK")

	// The acked flush is durable under the two-epoch rule: a crash after
	// the ack must not resurrect any flushed key.
	s.SeedCrashRNG(5)
	c.send("crash partial\r\n")
	c.expect("OK")
	for _, k := range keys {
		c.send("get %s\r\n", k)
		c.expect("END")
	}

	// The recovered runtime is live for new writes (back to buffered
	// acks: nothing advances the hour-long epochs after the crash).
	c.send("durability buffered\r\n")
	c.expect("OK")
	c.send("set postcrash 0 0 2\r\nok\r\n")
	c.expect("STORED")
	c.send("get postcrash\r\n")
	c.expect("VALUE postcrash 0 2", "ok", "END")
}
