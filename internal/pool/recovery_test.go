package pool_test

import (
	"os"
	"path/filepath"
	"testing"

	"montage/internal/kvstore"
	"montage/internal/pmem"
	"montage/internal/pool"
)

// recoverMap crashes aside, rebuilds a sharded store from a recovered
// pool and returns the new pool plus its full key -> value map.
func recoverMap(t *testing.T, p *pool.Pool) (*pool.Pool, map[string]string) {
	t.Helper()
	p2, chunks, err := p.Recover(2)
	if err != nil {
		t.Fatal(err)
	}
	store, err := kvstore.RecoverShardedStore(p2, 64, chunks, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]string)
	for _, k := range store.Keys(0) {
		if v, ok := store.Get(0, k); ok {
			m[k] = string(v)
		}
	}
	return p2, m
}

// TestRecoverIdempotent runs recovery twice over the same crash: the
// sweep must durably invalidate what it discards, so a second crash and
// recovery — with no intervening writes — reproduces exactly the same
// state (no loss, no resurrection of the discarded epochs).
func TestRecoverIdempotent(t *testing.T) {
	for _, mode := range []pmem.CrashMode{pmem.CrashDropAll, pmem.CrashPartial} {
		p := newTestPool(t, 3)
		p.SeedCrashRNG(7)
		store := kvstore.New(kvstore.NewShardedBackend(p, 64), 0)
		for i := 0; i < 30; i++ {
			if err := store.Set(0, "dur-"+itoa(i), []byte("v"+itoa(i))); err != nil {
				t.Fatal(err)
			}
		}
		p.Sync(0)
		for i := 0; i < 10; i++ {
			if err := store.Set(0, "volatile-"+itoa(i), []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		p.Crash(mode)

		p2, first := recoverMap(t, p)
		for i := 0; i < 30; i++ {
			if first["dur-"+itoa(i)] != "v"+itoa(i) {
				t.Fatalf("mode %v: synced key dur-%d lost in first recovery", mode, i)
			}
		}

		p2.Crash(mode)
		p3, second := recoverMap(t, p2)
		if len(second) != len(first) {
			t.Fatalf("mode %v: second recovery has %d keys, first had %d", mode, len(second), len(first))
		}
		for k, v := range first {
			if second[k] != v {
				t.Fatalf("mode %v: key %q = %q after second recovery, want %q", mode, k, second[k], v)
			}
		}
		p3.Close()
	}
}

// TestOpenManifestDirIgnoresStaleShardFile pins Open to the MANIFEST's
// shard count: a leftover shard image from an earlier, wider layout
// (here a bogus shard-002.img next to a 2-shard manifest) must be
// ignored, not loaded as a third shard.
func TestOpenManifestDirIgnoresStaleShardFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pool.d")
	p := newTestPool(t, 2)
	store := kvstore.New(kvstore.NewShardedBackend(p, 64), 0)
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = "key-" + itoa(i)
		if err := store.Set(0, keys[i], []byte("v-"+itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Save(0, dir); err != nil {
		t.Fatal(err)
	}
	p.Close()

	// A stale third shard image: copy of shard 0 under the next index.
	img, err := os.ReadFile(filepath.Join(dir, "shard-000.img"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard-002.img"), img, 0o644); err != nil {
		t.Fatal(err)
	}

	p2, chunks, loaded, err := pool.Open(dir, pool.Config{Shards: 5, Core: testCoreConfig()}, 2)
	if err != nil || !loaded {
		t.Fatalf("Open = loaded=%v err=%v", loaded, err)
	}
	defer p2.Close()
	if p2.NumShards() != 2 {
		t.Fatalf("reopened shards = %d, want the manifest's 2", p2.NumShards())
	}
	store2, err := kvstore.RecoverShardedStore(p2, 64, chunks, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok := store2.Get(0, k)
		if !ok || string(v) != "v-"+itoa(i) {
			t.Fatalf("key %s = %q %v after reopen with stale shard file", k, v, ok)
		}
	}
	if n := len(store2.Keys(0)); n != len(keys) {
		t.Fatalf("reopened store has %d keys, want %d (stale shard leaked in?)", n, len(keys))
	}
}
