package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"montage/internal/payload"
	"montage/internal/pmem"
	"montage/internal/ralloc"
)

// mockPayload implements Persistable for tests.
type mockPayload struct {
	addr     pmem.Addr
	epoch    uint64
	uid      uint64
	data     []byte
	buffered atomic.Bool
	flushed  atomic.Bool
	dead     atomic.Bool
}

func (m *mockPayload) PAddr() pmem.Addr  { return m.addr }
func (m *mockPayload) PEncodedSize() int { return payload.EncodedSize(len(m.data)) }
func (m *mockPayload) PEncodeInto(dst []byte) {
	payload.Encode(dst, payload.Header{Epoch: m.epoch, UID: m.uid, Typ: payload.Alloc}, m.data)
}
func (m *mockPayload) MarkBuffered() bool { return m.buffered.CompareAndSwap(false, true) }
func (m *mockPayload) ClearBuffered()     { m.buffered.Store(false) }
func (m *mockPayload) MarkFlushed()       { m.flushed.Store(true) }
func (m *mockPayload) PDead() bool        { return m.dead.Load() }

type fixture struct {
	dev  *pmem.Device
	heap *ralloc.Heap
	sys  *Sys
}

func newFixture(t testing.TB, cfg Config) *fixture {
	t.Helper()
	if cfg.MaxThreads == 0 {
		cfg.MaxThreads = 4
	}
	dev := pmem.NewDevice(1<<22, cfg.MaxThreads, nil)
	heap, err := ralloc.New(dev, cfg.MaxThreads, ralloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{dev: dev, heap: heap, sys: New(heap, cfg)}
}

func (f *fixture) newPayload(t testing.TB, tid int, e, uid uint64, data []byte) *mockPayload {
	t.Helper()
	addr, err := f.heap.Alloc(tid, len(data))
	if err != nil {
		t.Fatal(err)
	}
	return &mockPayload{addr: addr, epoch: e, uid: uid, data: data}
}

// durableHeader decodes the durable block at addr.
func (f *fixture) durableHeader(t *testing.T, addr pmem.Addr) (payload.Header, bool) {
	t.Helper()
	buf := make([]byte, f.heap.BlockSize(addr))
	if err := f.dev.Read(0, addr, buf); err != nil {
		t.Fatal(err)
	}
	h, _, ok := payload.Decode(buf)
	return h, ok
}

func TestBeginEndOp(t *testing.T) {
	f := newFixture(t, Config{})
	e := f.sys.BeginOp(0)
	if e != f.sys.Epoch() {
		t.Fatalf("BeginOp returned %d, clock is %d", e, f.sys.Epoch())
	}
	if !f.sys.CheckEpoch(0) {
		t.Fatal("CheckEpoch false for fresh op")
	}
	if f.sys.OpEpoch(0) != e {
		t.Fatal("OpEpoch mismatch")
	}
	f.sys.EndOp(0)
	if f.sys.OpEpoch(0) != 0 {
		t.Fatal("EndOp did not clear op epoch")
	}
}

func TestCheckEpochDetectsAdvance(t *testing.T) {
	f := newFixture(t, Config{})
	f.sys.BeginOp(0)
	f.sys.EndOp(0) // must end before advancing or waitAll would spin

	f.sys.BeginOp(1)
	go func() {
		// The op in epoch e does not block an advance from e to e+1
		// (only e-1 must be quiescent).
		f.sys.Advance()
	}()
	deadline := time.After(2 * time.Second)
	for f.sys.CheckEpoch(1) {
		select {
		case <-deadline:
			t.Fatal("advance never happened")
		default:
		}
	}
	f.sys.EndOp(1)
}

func TestPayloadDurableAfterTwoAdvances(t *testing.T) {
	// Blocking engine: the buffered container defers the write-back to the
	// e+1 -> e+2 boundary. (The nonblocking engine stages eagerly and may
	// commit earlier; see nonblocking_test.go for its durability pins.)
	f := newFixture(t, Config{BlockingAdvance: true})
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("payload-one"))
	f.sys.AddToPersist(0, e, p)
	f.sys.EndOp(0)

	// After zero or one advance the payload must not be durable.
	if _, ok := f.durableHeader(t, p.addr); ok {
		t.Fatal("payload durable before any advance")
	}
	f.sys.Advance() // e -> e+1
	if _, ok := f.durableHeader(t, p.addr); ok {
		t.Fatal("payload durable after one advance; epoch e persists at the e+1 -> e+2 tick")
	}
	f.sys.Advance() // e+1 -> e+2: epoch e payloads persist now
	h, ok := f.durableHeader(t, p.addr)
	if !ok {
		t.Fatal("payload not durable after two advances")
	}
	if h.Epoch != e || h.UID != 1 {
		t.Fatalf("durable header wrong: %+v", h)
	}
	if !p.flushed.Load() {
		t.Fatal("MarkFlushed not called")
	}
}

func TestClockPersistsOnAdvance(t *testing.T) {
	f := newFixture(t, Config{})
	start := f.sys.Epoch()
	f.sys.Advance()
	f.sys.Advance()
	got, err := ReadClock(f.dev)
	if err != nil {
		t.Fatal(err)
	}
	if got != start+2 {
		t.Fatalf("durable clock = %d, want %d", got, start+2)
	}
}

func TestBufferOverflowIncrementalWriteback(t *testing.T) {
	f := newFixture(t, Config{BufferSize: 8, BlockingAdvance: true})
	e := f.sys.BeginOp(0)
	var ps []*mockPayload
	for i := 0; i < 13; i++ {
		p := f.newPayload(t, 0, e, uint64(i+1), []byte{byte(i)})
		f.sys.AddToPersist(0, e, p)
		ps = append(ps, p)
	}
	f.sys.EndOp(0)
	if got := f.sys.PendingPersist(0); got != 8 {
		t.Fatalf("buffer holds %d entries, want 8", got)
	}
	// The 5 oldest must have been incrementally written back (staged).
	flushed := 0
	for _, p := range ps {
		if p.flushed.Load() {
			flushed++
		}
	}
	if flushed != 5 {
		t.Fatalf("%d payloads incrementally flushed, want 5", flushed)
	}
	// They are staged, not durable, until a fence/drain.
	if _, ok := f.durableHeader(t, ps[0].addr); ok {
		t.Fatal("incremental write-back became durable without a fence")
	}
	f.sys.Advance()
	f.sys.Advance()
	for i, p := range ps {
		if _, ok := f.durableHeader(t, p.addr); !ok {
			t.Fatalf("payload %d not durable after two advances", i)
		}
	}
}

func TestRebufferAfterIncrementalFlush(t *testing.T) {
	// A payload drained by overflow and then modified again in the same
	// epoch must be re-queued and re-flushed.
	f := newFixture(t, Config{BufferSize: 2, BlockingAdvance: true})
	e := f.sys.BeginOp(0)
	p0 := f.newPayload(t, 0, e, 1, []byte("v1"))
	f.sys.AddToPersist(0, e, p0)
	for i := 0; i < 4; i++ {
		p := f.newPayload(t, 0, e, uint64(10+i), []byte{byte(i)})
		f.sys.AddToPersist(0, e, p)
	}
	if !p0.flushed.Load() || p0.buffered.Load() {
		t.Fatal("p0 should have been incrementally flushed and dequeued")
	}
	p0.data = []byte("v2")
	f.sys.AddToPersist(0, e, p0) // re-queue after modification
	f.sys.EndOp(0)
	f.sys.Advance()
	f.sys.Advance()
	buf := make([]byte, f.heap.BlockSize(p0.addr))
	if err := f.dev.Read(0, p0.addr, buf); err != nil {
		t.Fatal(err)
	}
	_, data, ok := payload.Decode(buf)
	if !ok || string(data) != "v2" {
		t.Fatalf("durable data %q, want v2", data)
	}
}

func TestDuplicateAddSkipped(t *testing.T) {
	f := newFixture(t, Config{BlockingAdvance: true})
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("x"))
	f.sys.AddToPersist(0, e, p)
	f.sys.AddToPersist(0, e, p)
	f.sys.EndOp(0)
	if got := f.sys.PendingPersist(0); got != 1 {
		t.Fatalf("duplicate add queued %d entries, want 1", got)
	}
}

func TestDeadPayloadSkipped(t *testing.T) {
	// Blocking engine: a payload that dies while buffered is skipped. The
	// nonblocking engine has already staged it by then; cancellation is
	// handled by the anti-payload path instead.
	f := newFixture(t, Config{BlockingAdvance: true})
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("cancelled"))
	f.sys.AddToPersist(0, e, p)
	p.dead.Store(true)
	f.sys.EndOp(0)
	f.sys.Advance()
	f.sys.Advance()
	if _, ok := f.durableHeader(t, p.addr); ok {
		t.Fatal("dead payload was written back")
	}
	if p.flushed.Load() {
		t.Fatal("dead payload marked flushed")
	}
}

func TestDelayedReclamation(t *testing.T) {
	f := newFixture(t, Config{})
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("doomed"))
	f.sys.AddToPersist(0, e, p)
	f.sys.EndOp(0)
	f.sys.Advance()
	f.sys.Advance() // p durable now

	live := f.heap.Live()
	e2 := f.sys.BeginOp(0)
	f.sys.AddToFree(0, e2, p.addr)
	f.sys.EndOp(0)
	if f.heap.Live() != live {
		t.Fatal("block reclaimed immediately; must be delayed")
	}
	f.sys.Advance() // e2 -> e2+1
	if f.heap.Live() != live {
		t.Fatal("block reclaimed after one advance")
	}
	f.sys.Advance() // e2+1 -> e2+2: reclaim happens at the NEXT advance
	f.sys.Advance() // e2+2 -> e2+3: reclaims to_free[e2]
	if f.heap.Live() != live-1 {
		t.Fatalf("block not reclaimed: live=%d want %d", f.heap.Live(), live-1)
	}
	// The reclaimed block's durable header must be invalidated so a later
	// recovery cannot resurrect it.
	if _, ok := f.durableHeader(t, p.addr); ok {
		t.Fatal("reclaimed block still decodes as a valid payload")
	}
}

func TestLocalFreeReclamation(t *testing.T) {
	f := newFixture(t, Config{LocalFree: true})
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("doomed"))
	f.sys.AddToPersist(0, e, p)
	f.sys.AddToFree(0, e, p.addr)
	f.sys.EndOp(0)
	live := f.heap.Live()
	f.sys.Advance()
	f.sys.Advance()
	// The daemon must NOT have reclaimed it (LocalFree moves that to the
	// worker); the worker's next BeginOp does.
	if f.heap.Live() != live {
		t.Fatal("daemon reclaimed despite LocalFree")
	}
	f.sys.BeginOp(0)
	f.sys.EndOp(0)
	if f.heap.Live() != live-1 {
		t.Fatalf("worker did not reclaim: live=%d want %d", f.heap.Live(), live-1)
	}
}

func TestDirectFreeImmediate(t *testing.T) {
	f := newFixture(t, Config{DirectFree: true})
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("x"))
	live := f.heap.Live()
	f.sys.AddToFree(0, e, p.addr)
	f.sys.EndOp(0)
	if f.heap.Live() != live-1 {
		t.Fatal("DirectFree did not reclaim immediately")
	}
}

func TestTransientModeNoPersistence(t *testing.T) {
	f := newFixture(t, Config{Transient: true})
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("transient"))
	f.sys.AddToPersist(0, e, p)
	live := f.heap.Live()
	f.sys.AddToFree(0, e, p.addr)
	f.sys.EndOp(0)
	if f.sys.PendingPersist(0) != 0 {
		t.Fatal("transient mode queued a write-back")
	}
	if f.heap.Live() != live-1 {
		t.Fatal("transient mode did not free immediately")
	}
	f.sys.Advance()
	if got, _ := ReadClock(f.dev); got != FirstEpoch {
		t.Fatalf("transient mode persisted the clock: %d", got)
	}
}

func TestPolicyPerOpFlushesAtEndOp(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyPerOp})
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("dw"))
	f.sys.AddToPersist(0, e, p)
	if p.flushed.Load() {
		t.Fatal("PolicyPerOp flushed before EndOp")
	}
	f.sys.EndOp(0)
	if _, ok := f.durableHeader(t, p.addr); !ok {
		t.Fatal("PolicyPerOp payload not durable after EndOp")
	}
}

func TestPolicyDirectFlushesAtAdd(t *testing.T) {
	f := newFixture(t, Config{Policy: PolicyDirect})
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("dirwb"))
	f.sys.AddToPersist(0, e, p)
	if !p.flushed.Load() {
		t.Fatal("PolicyDirect did not flush at AddToPersist")
	}
	f.sys.EndOp(0)
	if _, ok := f.durableHeader(t, p.addr); !ok {
		t.Fatal("PolicyDirect payload not durable after EndOp fence")
	}
}

func TestSyncMakesWorkDurable(t *testing.T) {
	f := newFixture(t, Config{})
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("sync me"))
	f.sys.AddToPersist(0, e, p)
	f.sys.EndOp(0)
	f.sys.Sync(0)
	if _, ok := f.durableHeader(t, p.addr); !ok {
		t.Fatal("payload not durable after Sync")
	}
	if got, _ := ReadClock(f.dev); got < e+2 {
		t.Fatalf("durable clock %d after sync, want >= %d", got, e+2)
	}
}

func TestAdvanceWaitsForStragglers(t *testing.T) {
	// Blocking engine only: waitAll's quiescence is exactly what the
	// nonblocking engine removes (TestFrontierNotBlockedByStalledOp).
	f := newFixture(t, Config{BlockingAdvance: true})
	e := f.sys.BeginOp(0) // op in epoch e
	// Advance e -> e+1 does not require e's quiescence, but the next
	// advance (e+1 -> e+2) must wait for our op.
	f.sys.Advance()
	done := make(chan struct{})
	go func() {
		f.sys.Advance()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("advance completed while an epoch-e operation was active")
	case <-time.After(50 * time.Millisecond):
	}
	_ = e
	f.sys.EndOp(0)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("advance never completed after EndOp")
	}
}

func TestBeginOpConcurrentWithAdvances(t *testing.T) {
	f := newFixture(t, Config{MaxThreads: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				f.sys.Advance()
			}
		}
	}()
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e := f.sys.BeginOp(tid)
				if e == 0 {
					t.Error("BeginOp returned epoch 0")
				}
				p := f.newPayload(t, tid, e, uint64(tid*1000+i), []byte{byte(i)})
				f.sys.AddToPersist(tid, e, p)
				f.sys.EndOp(tid)
			}
		}(tid)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	f.sys.Close()
}

func TestRealTimeDaemon(t *testing.T) {
	f := newFixture(t, Config{EpochLength: time.Millisecond})
	start := f.sys.Epoch()
	deadline := time.After(2 * time.Second)
	for f.sys.Epoch() < start+3 {
		select {
		case <-deadline:
			t.Fatal("daemon did not advance the epoch")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	f.sys.Close()
	after := f.sys.Epoch()
	time.Sleep(5 * time.Millisecond)
	if f.sys.Epoch() < after {
		t.Fatal("epoch moved backward")
	}
}

func TestCloseFlushesEverything(t *testing.T) {
	f := newFixture(t, Config{})
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("closing"))
	f.sys.AddToPersist(0, e, p)
	f.sys.EndOp(0)
	f.sys.Close()
	if _, ok := f.durableHeader(t, p.addr); !ok {
		t.Fatal("payload not durable after Close")
	}
}

func TestOldestUnpersistedTracking(t *testing.T) {
	// The mindicator mirrors the buffered containers, which only the
	// blocking engine populates (the nonblocking engine's staging layer
	// has nothing pending after AddToPersist returns).
	f := newFixture(t, Config{BlockingAdvance: true})
	if f.sys.OldestUnpersisted() != int64(1<<63-1) {
		t.Fatal("fresh system should report Empty")
	}
	e := f.sys.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("x"))
	f.sys.AddToPersist(0, e, p)
	f.sys.EndOp(0)
	if got := f.sys.OldestUnpersisted(); got != int64(e) {
		t.Fatalf("OldestUnpersisted = %d, want %d", got, e)
	}
	f.sys.Advance()
	f.sys.Advance()
	if got := f.sys.OldestUnpersisted(); got != int64(1<<63-1) {
		t.Fatalf("OldestUnpersisted = %d after full persist, want Empty", got)
	}
}

func TestAdvancesCounter(t *testing.T) {
	f := newFixture(t, Config{})
	if f.sys.Advances() != 0 {
		t.Fatal("fresh system has nonzero advance count")
	}
	f.sys.Advance()
	f.sys.Advance()
	if got := f.sys.Advances(); got != 2 {
		t.Fatalf("Advances = %d, want 2", got)
	}
}

func TestEpochOpsTrigger(t *testing.T) {
	f := newFixture(t, Config{MaxThreads: 2, EpochOps: 10})
	start := f.sys.Epoch()
	for i := 0; i < 10; i++ {
		f.sys.BeginOp(0)
		f.sys.EndOp(0)
	}
	if got := f.sys.Epoch(); got != start+1 {
		t.Fatalf("epoch = %d after 10 ops, want %d", got, start+1)
	}
	for i := 0; i < 9; i++ {
		f.sys.BeginOp(1)
		f.sys.EndOp(1)
	}
	if got := f.sys.Epoch(); got != start+1 {
		t.Fatalf("epoch advanced early: %d", got)
	}
	f.sys.BeginOp(1)
	f.sys.EndOp(1)
	if got := f.sys.Epoch(); got != start+2 {
		t.Fatalf("epoch = %d after 20 ops, want %d", got, start+2)
	}
}

func TestEpochPayloadsTrigger(t *testing.T) {
	f := newFixture(t, Config{MaxThreads: 1, EpochPayloads: 5})
	start := f.sys.Epoch()
	// Ops without payloads must not advance the epoch.
	for i := 0; i < 20; i++ {
		f.sys.BeginOp(0)
		f.sys.EndOp(0)
	}
	if got := f.sys.Epoch(); got != start {
		t.Fatalf("epoch advanced without payloads: %d", got)
	}
	uid := uint64(0)
	for i := 0; i < 5; i++ {
		e := f.sys.BeginOp(0)
		uid++
		p := f.newPayload(t, 0, e, uid, []byte{byte(i)})
		f.sys.AddToPersist(0, e, p)
		f.sys.EndOp(0)
	}
	if got := f.sys.Epoch(); got != start+1 {
		t.Fatalf("epoch = %d after 5 payloads, want %d", got, start+1)
	}
}
