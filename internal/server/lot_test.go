package server

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestParkingLotSharedSubscriber drives many epoch-wait connections
// through the shared lot: every ack must arrive, the lot must have
// parked waiters (counted in obs), and the per-tick fanout histogram
// must show the shared subscriber waking them.
func TestParkingLotSharedSubscriber(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2, DefaultMode: AckEpochWait})
	const conns, sets = 4, 8

	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialPipe(t, s, i)
			for j := 0; j < sets; j++ {
				c.send("set lot%d-%d 0 0 5\r\nvalue\r\n", i, j)
				c.expect("STORED")
			}
		}(i)
	}
	wg.Wait()

	snap := s.Recorder().Snapshot()
	if snap.Server.AcksEpoch != conns*sets {
		t.Fatalf("acks_epoch_wait = %d, want %d", snap.Server.AcksEpoch, conns*sets)
	}
	if snap.Server.ParkWaiters == 0 {
		t.Fatal("park_waiters = 0; epoch-wait acks never went through the lot")
	}
	if snap.Latency.ParkFanout.Count == 0 {
		t.Fatal("park_fanout recorded no ticks; the shared subscriber never woke a waiter")
	}
}

// TestParkingLotFastPath checks that an already-durable epoch never
// parks a waiter.
func TestParkingLotFastPath(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialPipe(t, s, 0)
	c.send("set k 0 0 1\r\nv\r\n")
	c.expect("STORED")
	s.Sync()

	s.mu.RLock()
	lot := s.cur.lot.shard(0)
	s.mu.RUnlock()
	w := lot.esys.PersistedEpoch()
	before := s.Recorder().Snapshot().Server.ParkWaiters
	if !lot.wait(w) {
		t.Fatal("wait on an already-durable epoch reported a crash")
	}
	if got := s.Recorder().Snapshot().Server.ParkWaiters; got != before {
		t.Fatalf("durable-epoch wait parked (park_waiters %d -> %d)", before, got)
	}
}

// TestParkingLotCrashAborts pins the abort path through the lot: a
// crash while an epoch-wait ack is parked fails it with SERVER_ERROR
// (framing intact), exactly as the per-waiter WaitPersisted used to.
func TestParkingLotCrashAborts(t *testing.T) {
	// A huge epoch length means no daemon tick will ever release the
	// waiter; only the crash can.
	s := newTestServer(t, Config{EpochLength: time.Hour, AllowCrash: true})
	c := dialPipe(t, s, 0)
	c.send("durability epoch-wait\r\n")
	c.expect("OK")
	c.send("set doomed 0 0 5\r\nvalue\r\n")

	// Wait until the ack is parked in the lot (no advance will come),
	// then crash from a second connection: the parked ack must fail.
	deadline := time.Now().Add(5 * time.Second)
	for s.Recorder().Snapshot().Server.ParkWaiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no waiter ever parked")
		}
		time.Sleep(time.Millisecond)
	}
	c2 := dialPipe(t, s, 1)
	c2.send("crash\r\n")
	c2.expect("OK")
	c.expect("SERVER_ERROR crash: write may not be durable")
}

// TestEngineStatExposed pins the epoch_engine stat for both engines.
func TestEngineStatExposed(t *testing.T) {
	for _, tc := range []struct {
		blocking bool
		want     string
	}{{false, "nonblocking"}, {true, "blocking"}} {
		s := newTestServer(t, Config{BlockingAdvance: tc.blocking})
		c := dialPipe(t, s, 0)
		c.send("stats\r\n")
		found := false
		for {
			line := c.line()
			if line == "END" {
				break
			}
			if line == fmt.Sprintf("STAT epoch_engine %s", tc.want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("stats missing 'STAT epoch_engine %s'", tc.want)
		}
		c.send("quit\r\n")
	}
}
