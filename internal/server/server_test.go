package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer builds a small montage-backed server (no listener; the
// tests drive serveConn directly over pipes unless they Listen
// themselves).
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.ArenaSize == 0 {
		cfg.ArenaSize = 1 << 24
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 256
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 4
	}
	if cfg.EpochLength == 0 {
		cfg.EpochLength = time.Millisecond
	}
	if cfg.MaxItemSize == 0 {
		cfg.MaxItemSize = 64 << 10
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(time.Second) })
	return s
}

// testClient drives one serveConn over an in-memory pipe.
type testClient struct {
	t  *testing.T
	c  net.Conn
	br *bufio.Reader
	wg sync.WaitGroup
}

func dialPipe(t *testing.T, s *Server, tid int) *testClient {
	t.Helper()
	cl, sv := net.Pipe()
	tc := &testClient{t: t, c: cl, br: bufio.NewReader(cl)}
	tc.wg.Add(1)
	go func() {
		defer tc.wg.Done()
		s.serveConn(sv, tid)
	}()
	t.Cleanup(func() {
		cl.Close()
		tc.wg.Wait()
	})
	return tc
}

func (tc *testClient) send(format string, args ...interface{}) {
	tc.t.Helper()
	if _, err := io.WriteString(tc.c, fmt.Sprintf(format, args...)); err != nil {
		tc.t.Fatalf("send: %v", err)
	}
}

func (tc *testClient) line() string {
	tc.t.Helper()
	tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := tc.br.ReadString('\n')
	if err != nil {
		tc.t.Fatalf("read line: %v", err)
	}
	return strings.TrimRight(line, "\r\n")
}

func (tc *testClient) expect(want ...string) {
	tc.t.Helper()
	for _, w := range want {
		if got := tc.line(); got != w {
			tc.t.Fatalf("got %q, want %q", got, w)
		}
	}
}

func TestSetGetDelete(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialPipe(t, s, 0)

	c.send("set greet 42 0 5\r\nhello\r\n")
	c.expect("STORED")
	c.send("get greet\r\n")
	c.expect("VALUE greet 42 5", "hello", "END")
	c.send("get missing\r\n")
	c.expect("END")
	c.send("get greet missing greet\r\n")
	c.expect("VALUE greet 42 5", "hello", "VALUE greet 42 5", "hello", "END")
	c.send("delete greet\r\n")
	c.expect("DELETED")
	c.send("delete greet\r\n")
	c.expect("NOT_FOUND")
	c.send("get greet\r\n")
	c.expect("END")
}

func TestAddReplaceCASOverWire(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialPipe(t, s, 0)

	c.send("add k 0 0 2\r\nv1\r\n")
	c.expect("STORED")
	c.send("add k 0 0 2\r\nv2\r\n")
	c.expect("NOT_STORED")
	c.send("replace k 0 0 2\r\nv3\r\n")
	c.expect("STORED")
	c.send("replace missing 0 0 1\r\nx\r\n")
	c.expect("NOT_STORED")

	c.send("gets k\r\n")
	head := c.line() // VALUE k 0 2 <cas>
	fields := strings.Fields(head)
	if len(fields) != 5 || fields[0] != "VALUE" {
		t.Fatalf("gets header %q", head)
	}
	cas := fields[4]
	c.expect("v3", "END")

	c.send("cas k 0 0 2 %s\r\nv4\r\n", cas)
	c.expect("STORED")
	c.send("cas k 0 0 2 %s\r\nv5\r\n", cas) // stale token
	c.expect("EXISTS")
	c.send("cas missing 0 0 1 %s\r\nx\r\n", cas)
	c.expect("NOT_FOUND")
	c.send("get k\r\n")
	c.expect("VALUE k 0 2", "v4", "END")
}

func TestNoreplyAndPipelining(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialPipe(t, s, 0)

	// A pipelined burst: noreply commands produce nothing; the rest come
	// back in order.
	c.send("set a 0 0 1 noreply\r\nA\r\n" +
		"set b 0 0 1\r\nB\r\n" +
		"delete missing noreply\r\n" +
		"get a b\r\n" +
		"version\r\n")
	c.expect("STORED",
		"VALUE a 0 1", "A", "VALUE b 0 1", "B", "END",
		"VERSION montage/0.2")
}

func TestTouchAndExpiry(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialPipe(t, s, 0)

	// Negative exptime stores the item already expired.
	c.send("set dead 0 -1 1\r\nx\r\n")
	c.expect("STORED")
	c.send("get dead\r\n")
	c.expect("END")

	c.send("set live 0 3600 1\r\ny\r\n")
	c.expect("STORED")
	c.send("touch live 7200\r\n")
	c.expect("TOUCHED")
	c.send("touch missing 60\r\n")
	c.expect("NOT_FOUND")
	c.send("get live\r\n")
	c.expect("VALUE live 0 1", "y", "END")
}

func TestDurabilityModes(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialPipe(t, s, 0)

	c.send("durability\r\n")
	c.expect("DURABILITY buffered")
	c.send("durability sync\r\n")
	c.expect("OK")
	c.send("set k 0 0 1\r\nv\r\n")
	c.expect("STORED")
	c.send("durability epoch-wait\r\n")
	c.expect("OK")
	c.send("set k 0 0 1\r\nw\r\n")
	c.expect("STORED") // parked until the 1ms epoch clock persists it
	c.send("durability bogus\r\n")
	c.expect("CLIENT_ERROR unknown durability mode \"bogus\" (want buffered, sync, or epoch-wait)")

	snap := s.Recorder().Snapshot()
	if snap.Server.AcksSync != 1 || snap.Server.AcksEpoch != 1 {
		t.Fatalf("ack counters sync=%d epoch=%d", snap.Server.AcksSync, snap.Server.AcksEpoch)
	}
	if snap.Latency.AckSyncNs.Count != 1 || snap.Latency.AckEpochNs.Count != 1 {
		t.Fatalf("ack histograms sync=%d epoch=%d",
			snap.Latency.AckSyncNs.Count, snap.Latency.AckEpochNs.Count)
	}
}

func TestProtocolErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialPipe(t, s, 0)

	c.send("bogus\r\n")
	c.expect("ERROR")
	c.send("set k notanumber 0 1\r\n")
	c.expect("CLIENT_ERROR bad flags")
	c.send("set %s 0 0 1\r\nx\r\n", strings.Repeat("k", 300))
	// The header was rejected before its length was trusted, so the body
	// line "x" falls through as an unknown command.
	c.expect("CLIENT_ERROR bad key", "ERROR")
	c.send("get\r\n")
	c.expect("CLIENT_ERROR bad command line format")
	// Torn body: terminator missing. The connection stays up; the spilled
	// bytes fail as commands.
	c.send("set k 0 0 2\r\nvvNOPE\r\n")
	c.expect("CLIENT_ERROR bad data chunk")
	c.send("version\r\n")
	// The dangling "PE\r\n" (2 body bytes + 2 terminator bytes were
	// consumed) parses as an unknown command first.
	c.expect("ERROR", "VERSION montage/0.2")

	if snap := s.Recorder().Snapshot(); snap.Server.ProtoErrors < 4 {
		t.Fatalf("proto errors = %d, want >= 4", snap.Server.ProtoErrors)
	}
}

func TestOversizedValue(t *testing.T) {
	s := newTestServer(t, Config{MaxItemSize: 1024})
	c := dialPipe(t, s, 0)

	big := strings.Repeat("x", 2048)
	c.send("set k 0 0 2048\r\n%s\r\n", big)
	c.expect("SERVER_ERROR object too large for cache")
	// The body was swallowed: the connection is still framed.
	c.send("set k 0 0 2\r\nok\r\n")
	c.expect("STORED")
}

func TestLineTooLongClosesConn(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialPipe(t, s, 0)

	// The pipe is unbuffered, so the oversized line must be written from a
	// goroutine: the server stops reading mid-line to respond.
	go io.WriteString(c.c, "get "+strings.Repeat("k ", maxLineLen)+"\r\n")
	c.expect("SERVER_ERROR line too long")
	if _, err := c.br.ReadString('\n'); err == nil {
		t.Fatal("connection survived an unframeable line")
	}
}

func TestStatsAndFlushAll(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialPipe(t, s, 0)

	c.send("set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\n")
	c.expect("STORED", "STORED")
	c.send("stats\r\n")
	stats := map[string]string{}
	for {
		line := c.line()
		if line == "END" {
			break
		}
		f := strings.Fields(line)
		if len(f) != 3 || f[0] != "STAT" {
			t.Fatalf("bad stat line %q", line)
		}
		stats[f[1]] = f[2]
	}
	if stats["curr_items"] != "2" {
		t.Fatalf("curr_items = %q", stats["curr_items"])
	}
	if stats["backend"] != "montage" || stats["durability"] != "buffered" {
		t.Fatalf("backend=%q durability=%q", stats["backend"], stats["durability"])
	}
	if stats["epoch"] == "" || stats["persisted_epoch"] == "" {
		t.Fatal("missing epoch watermarks in stats")
	}
	c.send("flush_all\r\n")
	c.expect("OK")
	c.send("get a b\r\n")
	c.expect("END")
}

func TestTransientBackendDegradesToBuffered(t *testing.T) {
	s := newTestServer(t, Config{Backend: "dram"})
	c := dialPipe(t, s, 0)

	c.send("durability sync\r\n")
	c.expect("OK")
	c.send("set k 0 0 1\r\nv\r\n")
	c.expect("STORED")
	c.send("get k\r\n")
	c.expect("VALUE k 0 1", "v", "END")
	// No epochs behind a transient backend: no sync acks were recorded.
	if got := s.Recorder().Snapshot().Server.AcksSync; got != 0 {
		t.Fatalf("transient backend recorded %d sync acks", got)
	}
}

func TestQuitAndTCPServe(t *testing.T) {
	s := newTestServer(t, Config{})
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()

	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	io.WriteString(nc, "set k 0 0 1\r\nv\r\nquit\r\n")
	line, err := br.ReadString('\n')
	if err != nil || strings.TrimRight(line, "\r\n") != "STORED" {
		t.Fatalf("over TCP: %q %v", line, err)
	}
	// quit closes the connection server-side.
	if _, err := br.ReadString('\n'); err == nil {
		t.Fatal("connection survived quit")
	}
	nc.Close()

	if err := s.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}
