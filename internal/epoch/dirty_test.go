package epoch

import (
	"math/rand"
	"testing"

	"montage/internal/obs"
)

// TestDirtyCoalescingSameEpoch pins the tentpole fast path: the first
// AddToPersist in an epoch stages eagerly, every subsequent same-epoch
// call is a dirty hit that skips the encode, and the deferred encode
// (exactly one) serializes the payload's latest image on the way to
// durability.
func TestDirtyCoalescingSameEpoch(t *testing.T) {
	f := newFixture(t, Config{})
	s := f.sys
	rec := obs.New(4)
	s.SetRecorder(rec)

	e := s.BeginOp(0)
	p := f.newPayload(t, 0, e, 1, []byte("v1"))
	s.AddToPersist(0, e, p)
	p.data = []byte("v2")
	s.AddToPersist(0, e, p)
	p.data = []byte("v3-final")
	s.AddToPersist(0, e, p)
	s.EndOp(0)

	snap := rec.Snapshot().Epoch
	if snap.PersistEager != 1 {
		t.Fatalf("persist_eager = %d, want 1 (one encode per epoch)", snap.PersistEager)
	}
	if snap.PersistDirtyHits != 2 {
		t.Fatalf("persist_dirty_hits = %d, want 2", snap.PersistDirtyHits)
	}
	s.Advance()
	s.Advance()
	if got := s.PersistedEpoch(); got != e {
		t.Fatalf("PersistedEpoch = %d after two advances, want %d", got, e)
	}
	if got := rec.Snapshot().Epoch.PersistLazyEncodes; got != 1 {
		t.Fatalf("persist_lazy_encodes = %d, want 1", got)
	}
	h, ok := f.durableHeader(t, p.addr)
	if !ok || h.Epoch != e || h.UID != 1 {
		t.Fatalf("durable header = %+v (ok=%v), want epoch %d uid 1", h, ok, e)
	}
	// The settled image is the latest write, not the eagerly staged v1.
	buf := make([]byte, p.PEncodedSize())
	if err := f.dev.Read(0, p.addr, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[len(buf)-len("v3-final"):]) != "v3-final" {
		t.Fatalf("durable image %q does not end with the latest write", buf)
	}
}

// TestDirtyBacklogGateHoldsClock pins the gate's safety rule: while a
// marked update's lazy encode is still pending (its owner straddles the
// epoch), no advance may certify that epoch — the durable clock must not
// move past it, so no sync or epoch-wait ack can cover the un-encoded
// update. The advance aborts (and counts the stall) instead of blocking.
func TestDirtyBacklogGateHoldsClock(t *testing.T) {
	f := newFixture(t, Config{})
	s := f.sys
	rec := obs.New(4)
	s.SetRecorder(rec)

	e := s.BeginOp(0) // straddler: held open across the advances below
	p := f.newPayload(t, 0, e, 2, []byte("w1"))
	s.AddToPersist(0, e, p)
	s.AddToPersist(0, e, p) // dirty mark, encode deferred

	for i := 0; i < 4; i++ {
		s.Advance()
	}
	if got := s.PersistedEpoch(); got >= e {
		t.Fatalf("PersistedEpoch = %d with an un-settled epoch-%d mark pending; gate failed", got, e)
	}
	if got := rec.Snapshot().Epoch.AdvanceDirtyStalls; got == 0 {
		t.Fatal("advance_dirty_stalls = 0; the gate never aborted an advance")
	}

	p.data = []byte("w2-final")
	s.AddToPersist(0, e, p)
	s.EndOp(0)
	s.Sync(0)
	if got := s.PersistedEpoch(); got < e {
		t.Fatalf("PersistedEpoch = %d after EndOp+Sync, want >= %d", got, e)
	}
	buf := make([]byte, p.PEncodedSize())
	if err := f.dev.Read(0, p.addr, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[len(buf)-len("w2-final"):]) != "w2-final" {
		t.Fatalf("durable image %q does not end with the latest write", buf)
	}
}

// TestDirtyStraddlerSelfSettle pins the owner-path deferred encode: a
// straddler whose dirty hit lands after the frontier has announced e+2
// must settle and commit its own entry (SettleOwn + fence), because the
// advance that makes e durable may already have claimed past its buffer.
func TestDirtyStraddlerSelfSettle(t *testing.T) {
	f := newFixture(t, Config{})
	s := f.sys
	rec := obs.New(4)
	s.SetRecorder(rec)

	e := s.BeginOp(0)
	p := f.newPayload(t, 0, e, 4, []byte("s1"))
	s.AddToPersist(0, e, p)
	s.AddToPersist(0, e, p) // dirty: the entry survives the drains below
	// Two advances: the first moves the clock, the second announces
	// frontier e+2 but aborts at the gate (the mark's encode is pending
	// and the straddler blocks the sweep).
	s.Advance()
	s.Advance()
	if fr := s.nbFrontier.Load(); fr < e+2 {
		t.Fatalf("test setup: frontier = %d, want >= %d", fr, e+2)
	}
	p.data = []byte("s2-final")
	s.AddToPersist(0, e, p) // dirty hit past the frontier: self-settle
	snap := rec.Snapshot().Epoch
	if snap.PersistLateFence != 1 {
		t.Fatalf("persist_late_fence = %d, want 1", snap.PersistLateFence)
	}
	if snap.PersistLazyEncodes != 1 {
		t.Fatalf("persist_lazy_encodes = %d, want 1", snap.PersistLazyEncodes)
	}
	// The self-settle committed the latest image; no further advance
	// needed for the bytes (the epoch clock may still be gated).
	buf := make([]byte, p.PEncodedSize())
	if err := f.dev.Read(0, p.addr, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[len(buf)-len("s2-final"):]) != "s2-final" {
		t.Fatalf("committed image %q does not end with the latest write", buf)
	}
	s.EndOp(0)
}

// TestDirtyHitZeroAlloc pins the fast path's zero-allocation contract at
// the epoch layer: a same-epoch re-persist that hits the dirty mark must
// not allocate (no encode, no buffer growth, no interface boxing).
func TestDirtyHitZeroAlloc(t *testing.T) {
	f := newFixture(t, Config{})
	s := f.sys
	rec := obs.New(4)
	s.SetRecorder(rec)

	e := s.BeginOp(0)
	p := f.newPayload(t, 0, e, 8, []byte("hot"))
	s.AddToPersist(0, e, p)
	allocs := testing.AllocsPerRun(200, func() {
		s.AddToPersist(0, e, p)
	})
	s.EndOp(0)
	if allocs != 0 {
		t.Fatalf("dirty-hit AddToPersist allocates %.1f per call, want 0", allocs)
	}
	if got := rec.Snapshot().Epoch.PersistDirtyHits; got == 0 {
		t.Fatal("persist_dirty_hits = 0; the loop never took the fast path")
	}
}

// BenchmarkAddToPersistSameEpoch measures the same-epoch re-persist hot
// path on both engines under a hot-key zipfian access pattern — the
// shape the dirty-coalescing fast path exists for. The nonblocking
// engine's dirty hit must be allocation-free and in the same cost class
// as the blocking engine's buffered dedup (which was always cheap; its
// cost is deferred to the boundary scan instead).
func BenchmarkAddToPersistSameEpoch(b *testing.B) {
	for _, bench := range []struct {
		name     string
		blocking bool
	}{
		{"nonblocking", false},
		{"blocking", true},
	} {
		b.Run(bench.name, func(b *testing.B) {
			f := newFixture(b, Config{BlockingAdvance: bench.blocking})
			s := f.sys
			e := s.BeginOp(0)
			const hot = 16
			payloads := make([]*mockPayload, hot)
			for i := range payloads {
				payloads[i] = f.newPayload(b, 0, e, uint64(i+1), []byte("hot-key-payload-bytes"))
				s.AddToPersist(0, e, payloads[i])
			}
			zipf := rand.NewZipf(rand.New(rand.NewSource(1)), 1.2, 1, hot-1)
			picks := make([]int, 4096)
			for i := range picks {
				picks[i] = int(zipf.Uint64())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AddToPersist(0, e, payloads[picks[i%len(picks)]])
			}
			b.StopTimer()
			s.EndOp(0)
		})
	}
}
