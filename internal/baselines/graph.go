package baselines

import (
	"sort"
	"sync"

	"montage/internal/pmem"
)

// TransientGraph is the no-persistence reference graph for Figures 11
// and 12: the same striped-lock adjacency design as the Montage graph,
// with vertex and edge attributes in DRAM (DRAM (T)) or in NVM blocks
// without any write-back (NVM (T)).
type TransientGraph struct {
	env     *Env
	medium  Medium
	stripes []tgStripe
	mask    uint64
}

type tgStripe struct {
	mu       sync.Mutex
	vertices map[uint64]*tgVertex
}

type tgVertex struct {
	id    uint64
	addr  pmem.Addr
	edges map[uint64]pmem.Addr // neighbor -> edge block (NilAddr for DRAM)
}

// NewTransientGraph creates an empty graph with nStripes lock stripes.
func NewTransientGraph(env *Env, medium Medium, nStripes int) *TransientGraph {
	n := 1
	for n < nStripes {
		n *= 2
	}
	g := &TransientGraph{env: env, medium: medium, stripes: make([]tgStripe, n), mask: uint64(n - 1)}
	for i := range g.stripes {
		g.stripes[i].vertices = make(map[uint64]*tgVertex)
	}
	return g
}

func (g *TransientGraph) stripe(id uint64) *tgStripe { return &g.stripes[id&g.mask] }

func (g *TransientGraph) lockPair(a, b uint64) func() {
	sa, sb := int(a&g.mask), int(b&g.mask)
	if sa == sb {
		g.stripes[sa].mu.Lock()
		return g.stripes[sa].mu.Unlock
	}
	if sa > sb {
		sa, sb = sb, sa
	}
	g.stripes[sa].mu.Lock()
	g.stripes[sb].mu.Lock()
	return func() {
		g.stripes[sb].mu.Unlock()
		g.stripes[sa].mu.Unlock()
	}
}

func (g *TransientGraph) allocAttr(tid, n int) (pmem.Addr, error) {
	if g.medium == NVM {
		return g.env.allocWrite(tid, make([]byte, n))
	}
	g.env.Clk.ChargeAlloc(tid)
	g.env.Clk.ChargeDRAM(tid, n)
	return pmem.NilAddr, nil
}

func (g *TransientGraph) freeAttr(tid int, addr pmem.Addr) {
	if addr != pmem.NilAddr {
		g.env.Heap.Free(tid, addr)
	}
}

// AddVertex creates a vertex with attrSize attribute bytes and edges to
// the given (existing) neighbors.
func (g *TransientGraph) AddVertex(tid int, id uint64, attrSize int, neighbors []uint64) (bool, error) {
	g.env.Clk.ChargeOp(tid)
	// Lock all touched stripes in order.
	stripes := map[int]bool{int(id & g.mask): true}
	for _, nb := range neighbors {
		stripes[int(nb&g.mask)] = true
	}
	order := make([]int, 0, len(stripes))
	for s := range stripes {
		order = append(order, s)
	}
	sort.Ints(order)
	for _, s := range order {
		g.stripes[s].mu.Lock()
	}
	defer func() {
		for i := len(order) - 1; i >= 0; i-- {
			g.stripes[order[i]].mu.Unlock()
		}
	}()
	st := g.stripe(id)
	if _, ok := st.vertices[id]; ok {
		return false, nil
	}
	addr, err := g.allocAttr(tid, attrSize)
	if err != nil {
		return false, err
	}
	v := &tgVertex{id: id, addr: addr, edges: make(map[uint64]pmem.Addr)}
	st.vertices[id] = v
	for _, nb := range neighbors {
		if nb == id {
			continue
		}
		nv, ok := g.stripe(nb).vertices[nb]
		if !ok {
			continue
		}
		if _, dup := v.edges[nb]; dup {
			continue
		}
		ea, err := g.allocAttr(tid, 16)
		if err != nil {
			return false, err
		}
		v.edges[nb] = ea
		nv.edges[id] = ea
	}
	return true, nil
}

// RemoveVertex deletes a vertex and its edges.
func (g *TransientGraph) RemoveVertex(tid int, id uint64) (bool, error) {
	g.env.Clk.ChargeOp(tid)
	for i := range g.stripes {
		g.stripes[i].mu.Lock()
	}
	defer func() {
		for i := len(g.stripes) - 1; i >= 0; i-- {
			g.stripes[i].mu.Unlock()
		}
	}()
	st := g.stripe(id)
	v, ok := st.vertices[id]
	if !ok {
		return false, nil
	}
	for nb, ea := range v.edges {
		g.freeAttr(tid, ea)
		if nv, ok := g.stripe(nb).vertices[nb]; ok {
			delete(nv.edges, id)
		}
	}
	g.freeAttr(tid, v.addr)
	delete(st.vertices, id)
	return true, nil
}

// AddEdge creates the edge {src,dst} with attrSize attribute bytes.
func (g *TransientGraph) AddEdge(tid int, src, dst uint64, attrSize int) (bool, error) {
	g.env.Clk.ChargeOp(tid)
	if src == dst {
		return false, nil
	}
	unlock := g.lockPair(src, dst)
	defer unlock()
	sv, ok1 := g.stripe(src).vertices[src]
	dv, ok2 := g.stripe(dst).vertices[dst]
	if !ok1 || !ok2 {
		return false, nil
	}
	if _, dup := sv.edges[dst]; dup {
		return false, nil
	}
	ea, err := g.allocAttr(tid, attrSize)
	if err != nil {
		return false, err
	}
	sv.edges[dst] = ea
	dv.edges[src] = ea
	return true, nil
}

// RemoveEdge deletes the edge {src,dst}.
func (g *TransientGraph) RemoveEdge(tid int, src, dst uint64) (bool, error) {
	g.env.Clk.ChargeOp(tid)
	unlock := g.lockPair(src, dst)
	defer unlock()
	sv, ok := g.stripe(src).vertices[src]
	if !ok {
		return false, nil
	}
	ea, ok := sv.edges[dst]
	if !ok {
		return false, nil
	}
	g.freeAttr(tid, ea)
	delete(sv.edges, dst)
	if dv, ok := g.stripe(dst).vertices[dst]; ok {
		delete(dv.edges, src)
	}
	return true, nil
}

// Order returns the vertex count.
func (g *TransientGraph) Order() int {
	n := 0
	for i := range g.stripes {
		g.stripes[i].mu.Lock()
		n += len(g.stripes[i].vertices)
		g.stripes[i].mu.Unlock()
	}
	return n
}

// SizeEdges returns the undirected edge count.
func (g *TransientGraph) SizeEdges() int {
	n := 0
	for i := range g.stripes {
		g.stripes[i].mu.Lock()
		for _, v := range g.stripes[i].vertices {
			for nb := range v.edges {
				if v.id < nb {
					n++
				}
			}
		}
		g.stripes[i].mu.Unlock()
	}
	return n
}
