// Package kvstore implements a memcached-like in-process key-value store
// with pluggable backends, standing in for the protected-library
// memcached variant (Kjellqvist et al., ICPP '20) that the paper uses to
// validate its microbenchmark results in Section 6.2. Like that variant,
// it links directly into the client application, dispensing with
// socket-based communication, and its index always lives in DRAM while
// item payloads live wherever the backend puts them: the Montage backend
// gives a fully persistent, recoverable cache; the transient backends
// give the DRAM (T) / NVM (T) reference lines of Figure 10.
//
// internal/server puts a real network front end over a Store. To support
// it, every mutating operation returns a DurabilityTag naming the shard
// and Montage epoch in which it linearized; a caller holding a tag can
// wait for the write's natural durability against the owning shard's
// persist watermark (epoch.Sys.WaitPersisted) instead of forcing an
// expensive per-operation Sync. Transient backends have no epochs and
// return the zero tag.
package kvstore

import (
	"container/list"
	"encoding/binary"
	"hash/maphash"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"montage/internal/baselines"
	"montage/internal/core"
	"montage/internal/pds"
)

// DurabilityTag names the point at which a mutation linearized: the
// pool shard that owns the key and the shard-local epoch of the update.
// Epochs are meaningful only within their shard — each shard is an
// independent epoch domain, so tags from different shards are not
// ordered with respect to each other. The zero tag means the backend
// has no epoch semantics (transient backends) and there is nothing to
// wait for.
type DurabilityTag struct {
	Shard int
	Epoch uint64
}

// IsZero reports whether the tag carries no durability obligation.
func (t DurabilityTag) IsZero() bool { return t.Epoch == 0 }

// Backend stores item payloads.
type Backend interface {
	// Get returns the value stored under key.
	Get(tid int, key string) ([]byte, bool)
	// Put inserts or updates key=val, returning the durability tag of
	// the update (zero for backends without epoch semantics). val is
	// only valid for the duration of the call (the store encodes into
	// reused scratch); key may borrow a reused buffer, so a backend
	// that retains it must clone it.
	Put(tid int, key string, val []byte) (DurabilityTag, error)
	// Delete removes key, reporting whether it was present and the
	// durability tag of the deletion.
	Delete(tid int, key string) (bool, DurabilityTag, error)
	// Keys lists the stored keys (not linearizable; admin use).
	Keys(tid int) []string
}

// MontageBackend persists items in a single Montage hashmap (shard 0 of
// a one-shard world). For a sharded pool, use ShardedBackend.
type MontageBackend struct {
	m *pds.HashMap
}

// NewMontageBackend wraps a Montage hashmap.
func NewMontageBackend(m *pds.HashMap) *MontageBackend { return &MontageBackend{m: m} }

// Get implements Backend.
func (b *MontageBackend) Get(tid int, key string) ([]byte, bool) { return b.m.Get(tid, key) }

// GetView implements the borrowed-read fast path.
func (b *MontageBackend) GetView(tid int, key string, v RawViewer) bool {
	return b.m.GetView(tid, key, v)
}

// Put implements Backend.
func (b *MontageBackend) Put(tid int, key string, val []byte) (DurabilityTag, error) {
	_, epoch, err := b.m.PutE(tid, key, val)
	return DurabilityTag{Epoch: epoch}, err
}

// Delete implements Backend.
func (b *MontageBackend) Delete(tid int, key string) (bool, DurabilityTag, error) {
	ok, epoch, err := b.m.RemoveE(tid, key)
	return ok, DurabilityTag{Epoch: epoch}, err
}

// Keys implements Backend.
func (b *MontageBackend) Keys(tid int) []string {
	snap := b.m.Snapshot(tid)
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	return keys
}

// TransientBackend keeps items in a transient map (DRAM or NVM medium).
type TransientBackend struct {
	m *baselines.TransientMap
}

// NewTransientBackend wraps a transient map.
func NewTransientBackend(m *baselines.TransientMap) *TransientBackend {
	return &TransientBackend{m: m}
}

// Get implements Backend.
func (b *TransientBackend) Get(tid int, key string) ([]byte, bool) { return b.m.Get(tid, key) }

// GetView implements the borrowed-read fast path.
func (b *TransientBackend) GetView(tid int, key string, v RawViewer) bool {
	return b.m.GetView(tid, key, v)
}

// Put implements Backend.
func (b *TransientBackend) Put(tid int, key string, val []byte) (DurabilityTag, error) {
	_, err := b.m.Put(tid, key, val)
	return DurabilityTag{}, err
}

// Delete implements Backend.
func (b *TransientBackend) Delete(tid int, key string) (bool, DurabilityTag, error) {
	ok, err := b.m.Remove(tid, key)
	return ok, DurabilityTag{}, err
}

// Keys implements Backend.
func (b *TransientBackend) Keys(tid int) []string { return b.m.Keys() }

// Stats counts cache activity.
type Stats struct {
	Hits        atomic.Uint64
	Misses      atomic.Uint64
	Sets        atomic.Uint64
	Deletes     atomic.Uint64
	Touches     atomic.Uint64
	CASHits     atomic.Uint64 // cas with a matching token
	CASMisses   atomic.Uint64 // cas whose token no longer matched
	Evictions   atomic.Uint64
	Expirations atomic.Uint64
}

// itemHeaderSize is the per-item persisted metadata: absolute expiry
// (unix nanoseconds; 0 = never) and the CAS token, memcached-style. Both
// persist with the item, so TTLs and gets/cas tokens survive crashes.
const itemHeaderSize = 16

// encodeItem prefixes a value with its expiry and CAS token.
func encodeItem(expiry int64, cas uint64, val []byte) []byte {
	buf := make([]byte, itemHeaderSize+len(val))
	binary.LittleEndian.PutUint64(buf, uint64(expiry))
	binary.LittleEndian.PutUint64(buf[8:], cas)
	copy(buf[itemHeaderSize:], val)
	return buf
}

func decodeItem(data []byte) (expiry int64, cas uint64, val []byte, ok bool) {
	if len(data) < itemHeaderSize {
		return 0, 0, nil, false
	}
	return int64(binary.LittleEndian.Uint64(data)),
		binary.LittleEndian.Uint64(data[8:]),
		data[itemHeaderSize:], true
}

// RawViewer receives the raw encoded item borrowed from a backend,
// valid only for the duration of the call.
type RawViewer interface {
	View(item []byte)
}

// ValueViewer receives a borrowed view of an item's decoded value and
// CAS token, valid only for the duration of the call. The server's get
// path renders VALUE blocks straight from the view.
type ValueViewer interface {
	ViewValue(val []byte, cas uint64)
}

// viewBackend is satisfied by backends that can expose a borrowed read
// (all the built-in ones). Backends without it fall back to the
// copying Get in Store.GetView.
type viewBackend interface {
	GetView(tid int, key string, v RawViewer) bool
}

// viewState adapts a backend's raw item view to the caller's value
// view: decode the header, check expiry, forward. Pooled so the read
// path allocates nothing.
type viewState struct {
	s       *Store
	v       ValueViewer
	hit     bool
	expired bool
}

func (st *viewState) View(item []byte) {
	expiry, cas, val, okd := decodeItem(item)
	if !okd {
		return
	}
	if expiry != 0 && expiry <= st.s.now() {
		st.expired = true
		return
	}
	st.hit = true
	st.v.ViewValue(val, cas)
}

var viewStatePool = sync.Pool{New: func() any { return new(viewState) }}

// CASOutcome is the result of a CompareAndSwap.
type CASOutcome int

const (
	// CASStored means the token matched and the value was replaced.
	CASStored CASOutcome = iota
	// CASExists means the item was modified since the token was fetched.
	CASExists
	// CASNotFound means the key is absent (or expired).
	CASNotFound
)

// nStripes is the size of the key-striped lock table that makes
// read-modify-write operations (Add/Replace/CompareAndSwap/Touch)
// atomic with respect to every other mutation of the same key. The LRU
// state is segmented on the same stripes, so a hit never contends with
// hits on other stripes.
const nStripes = 256

// lruSeg is one stripe's share of the eviction state. Segmenting the
// LRU removes the single global list lock that would otherwise
// re-serialize every hit and insert across all stripes (and, in a
// sharded pool, across all shards).
type lruSeg struct {
	mu    sync.Mutex
	lru   *list.List               // front = most recent
	items map[string]*list.Element // key -> LRU node
}

// Store is the memcached-like cache.
type Store struct {
	backend Backend
	stats   Stats
	now     func() int64 // injectable clock for TTL tests
	casSeq  atomic.Uint64
	seed    maphash.Seed

	// stripes serialize mutations per key so that check-then-act
	// operations and CAS-token assignment are atomic. Reads stay
	// lock-free at this layer.
	stripes [nStripes]sync.Mutex
	// encBufs are per-stripe item-encode scratch buffers (guarded by the
	// matching stripe lock): backends copy the encoded bytes out before
	// returning, so the steady-state write path never allocates here.
	encBufs [nStripes][]byte

	// capacity > 0 bounds the total item count with segmented LRU
	// eviction, as memcached does when memory fills: the bound is
	// global (tracked by count), but recency is per segment, and the
	// victim comes from the inserted key's own segment — approximate
	// LRU, exact capacity. capacity == 0 disables eviction (the
	// benchmark configuration: 1M records, no pressure).
	capacity int
	count    atomic.Int64
	segs     []lruSeg
}

// New creates a store over backend. capacity 0 means unbounded.
func New(backend Backend, capacity int) *Store {
	s := &Store{
		backend:  backend,
		capacity: capacity,
		now:      func() int64 { return time.Now().UnixNano() },
		seed:     maphash.MakeSeed(),
	}
	if capacity > 0 {
		s.segs = make([]lruSeg, nStripes)
		for i := range s.segs {
			s.segs[i].lru = list.New()
			s.segs[i].items = make(map[string]*list.Element)
		}
	}
	return s
}

// Stats returns the activity counters.
func (s *Store) Stats() *Stats { return &s.stats }

// stripeIdx maps a key to its stripe (and LRU segment) index.
func (s *Store) stripeIdx(key string) int {
	return int(maphash.String(s.seed, key) % nStripes)
}

func (s *Store) stripe(key string) *sync.Mutex {
	return &s.stripes[s.stripeIdx(key)]
}

// live loads key's item if present and unexpired. It never deletes; the
// Get path owns lazy expiration.
func (s *Store) live(tid int, key string) (cas uint64, expiry int64, val []byte, ok bool) {
	data, present := s.backend.Get(tid, key)
	if !present {
		return 0, 0, nil, false
	}
	expiry, cas, val, okd := decodeItem(data)
	if !okd || (expiry != 0 && expiry <= s.now()) {
		return 0, 0, nil, false
	}
	return cas, expiry, val, true
}

// Get returns the value for key. Expired items count as misses and are
// lazily deleted, as in memcached.
func (s *Store) Get(tid int, key string) ([]byte, bool) {
	v, _, ok := s.GetWithCAS(tid, key)
	return v, ok
}

// GetView is Get/GetWithCAS without the copies: on a hit, v.ViewValue
// receives the value borrowed from the backend — valid only during the
// call — and the item's CAS token. Misses and expired items (lazily
// deleted, as in Get) never call v. Backends without view support fall
// back to the copying path.
func (s *Store) GetView(tid int, key string, v ValueViewer) bool {
	vb, ok := s.backend.(viewBackend)
	if !ok {
		val, cas, hit := s.GetWithCAS(tid, key)
		if hit {
			v.ViewValue(val, cas)
		}
		return hit
	}
	st := viewStatePool.Get().(*viewState)
	st.s, st.v, st.hit, st.expired = s, v, false, false
	present := vb.GetView(tid, key, st)
	hit, expired := st.hit, st.expired
	st.s, st.v = nil, nil
	viewStatePool.Put(st)
	if hit {
		s.stats.Hits.Add(1)
		s.touch(key)
		return true
	}
	if present && expired {
		// Lazy expiration, under the stripe so a concurrent writer's
		// fresh item is never the one deleted.
		mu := s.stripe(key)
		mu.Lock()
		if data2, ok2 := s.backend.Get(tid, key); ok2 {
			if exp2, _, _, okd2 := decodeItem(data2); okd2 && exp2 != 0 && exp2 <= s.now() {
				s.stats.Expirations.Add(1)
				s.backend.Delete(tid, key)
			}
		}
		mu.Unlock()
	}
	s.stats.Misses.Add(1)
	return false
}

// GetWithCAS is Get, additionally returning the item's CAS token (the
// memcached "gets" unique value, for a later CompareAndSwap).
func (s *Store) GetWithCAS(tid int, key string) ([]byte, uint64, bool) {
	data, ok := s.backend.Get(tid, key)
	if ok {
		expiry, cas, v, okd := decodeItem(data)
		if okd && (expiry == 0 || expiry > s.now()) {
			s.stats.Hits.Add(1)
			s.touch(key)
			return v, cas, true
		}
		if okd {
			// Lazy expiration, under the stripe so a concurrent writer's
			// fresh item is never the one deleted.
			mu := s.stripe(key)
			mu.Lock()
			if data2, ok2 := s.backend.Get(tid, key); ok2 {
				if exp2, _, _, okd2 := decodeItem(data2); okd2 && exp2 != 0 && exp2 <= s.now() {
					s.stats.Expirations.Add(1)
					s.backend.Delete(tid, key)
				}
			}
			mu.Unlock()
		}
	}
	s.stats.Misses.Add(1)
	return nil, 0, false
}

// TTLImmediate is the "already expired" TTL sentinel: memcached's
// negative exptime means the item is stored but immediately expired.
// It maps to an absolute expiry in the past unconditionally, which a
// tiny positive TTL (e.g. 1ns) does not guarantee — under the
// injectable test clock, now() never advances, so now()+1ns would
// still be in the future forever.
const TTLImmediate time.Duration = -1

// expiryFor converts a relative ttl into an absolute expiry: 0 never
// expires, negative (TTLImmediate) is expired before any clock
// reading, positive is relative to now.
func (s *Store) expiryFor(ttl time.Duration) int64 {
	switch {
	case ttl == 0:
		return 0
	case ttl < 0:
		return -1 // before every clock: expired immediately
	default:
		return s.now() + int64(ttl)
	}
}

// evictOne removes the least recently used key of segment idx (falling
// back to subsequent segments when idx has nothing evictable) and
// returns it, or "" when nothing could be evicted. justInserted is
// never chosen while it is a segment's only entry — evicting the item
// that triggered the eviction would make inserts into an empty cache
// no-ops.
func (s *Store) evictOne(idx int, justInserted string) string {
	for off := 0; off < nStripes; off++ {
		seg := &s.segs[(idx+off)%nStripes]
		seg.mu.Lock()
		el := seg.lru.Back()
		if el != nil && el.Value.(string) == justInserted {
			el = el.Prev() // next-oldest, if any
		}
		if el != nil {
			victim := el.Value.(string)
			seg.lru.Remove(el)
			delete(seg.items, victim)
			s.count.Add(-1)
			seg.mu.Unlock()
			return victim
		}
		seg.mu.Unlock()
	}
	return ""
}

// encodeInto encodes an item into stripe idx's scratch buffer. The
// caller holds the stripe lock; every backend copies the bytes out
// before returning, so the buffer is free for reuse immediately.
func (s *Store) encodeInto(idx int, expiry int64, cas uint64, val []byte) []byte {
	need := itemHeaderSize + len(val)
	buf := s.encBufs[idx]
	if cap(buf) < need {
		buf = make([]byte, 0, need+need/2)
	}
	buf = buf[:need]
	s.encBufs[idx] = buf
	binary.LittleEndian.PutUint64(buf, uint64(expiry))
	binary.LittleEndian.PutUint64(buf[8:], cas)
	copy(buf[itemHeaderSize:], val)
	return buf
}

// put stores the item and maintains the LRU. Callers hold the stripe.
func (s *Store) put(tid int, key string, expiry int64, val []byte) (DurabilityTag, error) {
	idx := s.stripeIdx(key)
	tag, err := s.backend.Put(tid, key, s.encodeInto(idx, expiry, s.casSeq.Add(1), val))
	if err != nil {
		return DurabilityTag{}, err
	}
	s.stats.Sets.Add(1)
	if s.capacity > 0 {
		seg := &s.segs[idx]
		seg.mu.Lock()
		if el, ok := seg.items[key]; ok {
			seg.lru.MoveToFront(el)
		} else {
			// Clone: the LRU retains the key, and the serving path passes
			// strings borrowing a reused parse buffer.
			ck := strings.Clone(key)
			seg.items[ck] = seg.lru.PushFront(ck)
			s.count.Add(1)
		}
		seg.mu.Unlock()
		if int(s.count.Load()) > s.capacity {
			if victim := s.evictOne(idx, key); victim != "" {
				_, vtag, err := s.backend.Delete(tid, victim)
				if err != nil {
					return tag, err
				}
				// Fold the eviction into the caller's durability tag only
				// when both land on the same shard; epochs from different
				// shards are not comparable. A cross-shard eviction's
				// durability is best-effort (it rides that shard's own
				// epoch clock), which matches what eviction promises:
				// nothing — evicted data is gone either way.
				if vtag.Shard == tag.Shard && vtag.Epoch > tag.Epoch {
					tag.Epoch = vtag.Epoch
				}
				s.stats.Evictions.Add(1)
			}
		}
	}
	return tag, nil
}

// Set stores key=val with no expiry, evicting a least-recently-used
// item if the capacity bound is hit.
func (s *Store) Set(tid int, key string, val []byte) error {
	_, err := s.SetTag(tid, key, val, 0)
	return err
}

// SetTTL stores key=val expiring after ttl (0 = never).
func (s *Store) SetTTL(tid int, key string, val []byte, ttl time.Duration) error {
	_, err := s.SetTag(tid, key, val, ttl)
	return err
}

// SetTag is Set/SetTTL returning the write's durability tag.
func (s *Store) SetTag(tid int, key string, val []byte, ttl time.Duration) (DurabilityTag, error) {
	mu := s.stripe(key)
	mu.Lock()
	defer mu.Unlock()
	return s.put(tid, key, s.expiryFor(ttl), val)
}

// Add stores key=val only if the key is absent (memcached "add").
func (s *Store) Add(tid int, key string, val []byte, ttl time.Duration) (stored bool, tag DurabilityTag, err error) {
	mu := s.stripe(key)
	mu.Lock()
	defer mu.Unlock()
	if _, _, _, ok := s.live(tid, key); ok {
		return false, DurabilityTag{}, nil
	}
	tag, err = s.put(tid, key, s.expiryFor(ttl), val)
	return err == nil, tag, err
}

// Replace stores key=val only if the key is present (memcached
// "replace").
func (s *Store) Replace(tid int, key string, val []byte, ttl time.Duration) (stored bool, tag DurabilityTag, err error) {
	mu := s.stripe(key)
	mu.Lock()
	defer mu.Unlock()
	if _, _, _, ok := s.live(tid, key); !ok {
		return false, DurabilityTag{}, nil
	}
	tag, err = s.put(tid, key, s.expiryFor(ttl), val)
	return err == nil, tag, err
}

// CompareAndSwap stores key=val only if the item's CAS token still
// equals cas (memcached "cas", with the token from GetWithCAS).
func (s *Store) CompareAndSwap(tid int, key string, val []byte, ttl time.Duration, cas uint64) (CASOutcome, DurabilityTag, error) {
	mu := s.stripe(key)
	mu.Lock()
	defer mu.Unlock()
	cur, _, _, ok := s.live(tid, key)
	if !ok {
		s.stats.CASMisses.Add(1)
		return CASNotFound, DurabilityTag{}, nil
	}
	if cur != cas {
		s.stats.CASMisses.Add(1)
		return CASExists, DurabilityTag{}, nil
	}
	tag, err := s.put(tid, key, s.expiryFor(ttl), val)
	if err != nil {
		return CASExists, DurabilityTag{}, err
	}
	s.stats.CASHits.Add(1)
	return CASStored, tag, nil
}

// Touch updates key's expiry without changing its value (memcached
// "touch"). The rewritten item gets a fresh CAS token.
func (s *Store) Touch(tid int, key string, ttl time.Duration) (found bool, tag DurabilityTag, err error) {
	mu := s.stripe(key)
	mu.Lock()
	defer mu.Unlock()
	_, _, val, ok := s.live(tid, key)
	if !ok {
		return false, DurabilityTag{}, nil
	}
	tag, err = s.backend.Put(tid, key, s.encodeInto(s.stripeIdx(key), s.expiryFor(ttl), s.casSeq.Add(1), val))
	if err != nil {
		return false, DurabilityTag{}, err
	}
	s.stats.Touches.Add(1)
	return true, tag, nil
}

// Delete removes key.
func (s *Store) Delete(tid int, key string) (bool, error) {
	ok, _, err := s.DeleteTag(tid, key)
	return ok, err
}

// DeleteTag is Delete returning the deletion's durability tag.
func (s *Store) DeleteTag(tid int, key string) (bool, DurabilityTag, error) {
	mu := s.stripe(key)
	mu.Lock()
	defer mu.Unlock()
	ok, tag, err := s.backend.Delete(tid, key)
	if err != nil {
		return false, DurabilityTag{}, err
	}
	if ok {
		s.stats.Deletes.Add(1)
	}
	if s.capacity > 0 {
		seg := &s.segs[s.stripeIdx(key)]
		seg.mu.Lock()
		if el, present := seg.items[key]; present {
			seg.lru.Remove(el)
			delete(seg.items, key)
			s.count.Add(-1)
		}
		seg.mu.Unlock()
	}
	return ok, tag, nil
}

// Flush deletes every key (memcached "flush_all"), returning the number
// removed and the newest deletion tag per shard touched. A caller that
// wants the flush durable must wait on every returned tag — the
// deletions land in independent epoch domains.
func (s *Store) Flush(tid int) (int, []DurabilityTag, error) {
	n := 0
	newest := make(map[int]uint64)
	for _, key := range s.backend.Keys(tid) {
		ok, t, err := s.DeleteTag(tid, key)
		if err != nil {
			return n, flushTags(newest), err
		}
		if ok {
			n++
		}
		if !t.IsZero() && t.Epoch > newest[t.Shard] {
			newest[t.Shard] = t.Epoch
		}
	}
	return n, flushTags(newest), nil
}

func flushTags(newest map[int]uint64) []DurabilityTag {
	if len(newest) == 0 {
		return nil
	}
	tags := make([]DurabilityTag, 0, len(newest))
	for shard, epoch := range newest {
		tags = append(tags, DurabilityTag{Shard: shard, Epoch: epoch})
	}
	return tags
}

func (s *Store) touch(key string) {
	if s.capacity == 0 {
		return
	}
	seg := &s.segs[s.stripeIdx(key)]
	seg.mu.Lock()
	if el, ok := seg.items[key]; ok {
		seg.lru.MoveToFront(el)
	}
	seg.mu.Unlock()
}

// Keys lists the store's keys (admin/debug use; not linearizable).
func (s *Store) Keys(tid int) []string { return s.backend.Keys(tid) }

// restoreCASSeq resumes the CAS-token sequence above the largest
// surviving token, so gets/cas pairs span the crash correctly.
func (s *Store) restoreCASSeq() {
	var maxCAS uint64
	for _, key := range s.backend.Keys(0) {
		if data, ok := s.backend.Get(0, key); ok {
			if _, cas, _, okd := decodeItem(data); okd && cas > maxCAS {
				maxCAS = cas
			}
		}
	}
	s.casSeq.Store(maxCAS)
}

// RecoverMontageStore rebuilds a single-system Montage-backed store
// after a crash. CAS tokens persist with the items, so the token
// sequence resumes above the largest survivor.
func RecoverMontageStore(sys *core.System, nBuckets int, chunks [][]*core.PBlk, capacity int) (*Store, error) {
	m, err := pds.RecoverHashMap(sys, nBuckets, chunks)
	if err != nil {
		return nil, err
	}
	s := New(NewMontageBackend(m), capacity)
	s.restoreCASSeq()
	return s, nil
}
