package bench

import (
	"fmt"

	"montage/internal/core"
	"montage/internal/epoch"
	"montage/internal/kvstore"
	"montage/internal/obs"
	"montage/internal/pds"
	"montage/internal/simclock"
	"montage/internal/ycsb"
)

// FigWriteback profiles the device's write-combining pipeline under the
// YCSB loadgen: a write-only zipfian workload over key ranges of varying
// size drives a Montage hashmap store, and each cell reports acked
// throughput plus the combine ratio the device observed (staged
// write-backs absorbed in place per hundred that reached the durable
// arena).
//
// Two effects are on display. The per-thread to_persist buffer already
// dedups same-epoch Sets of one payload, so the device sees duplicate
// addresses only when that buffer overflows mid-epoch: the overflow
// flush stages the hot payload, a later Set dirties it again, and the
// epoch-boundary flush stages the same address a second time. The cell
// therefore runs with a deliberately small buffer, and the combine
// ratio tracks how far the zipfian working set outruns it. The series
// compare a serial drain (drain=1) against the auto-sized parallel
// drain (drain=auto), isolating what the partitioned commit is worth
// once combining has built the batch.
//
// Unlike the net/shard figures this runs in process on virtual time, so
// the throughput column reproduces shape rather than wall-clock Mops.
func FigWriteback(scale Scale, keyRanges []int) ([]Result, error) {
	if len(keyRanges) == 0 {
		keyRanges = []int{64, 1024, 16_384}
		if scale.KeyRange > 16_384 {
			keyRanges = append(keyRanges, scale.KeyRange)
		}
	}
	series := []struct {
		name    string
		workers int
	}{
		{"drain=1", 1},
		{"drain=auto", 0},
	}

	const threads = 8
	var out []Result
	for _, s := range series {
		for _, keys := range keyRanges {
			mops, ratio, stats, err := runWriteback(scale, threads, keys, s.workers)
			if err != nil {
				return nil, fmt.Errorf("writeback %s/keys=%d: %w", s.name, keys, err)
			}
			out = append(out, Result{
				Figure: "writeback", Series: s.name,
				Label: fmt.Sprintf("keys=%d", keys), X: float64(keys), Mops: mops,
				Stats: stats,
			})
			out = append(out, Result{
				Figure: "writeback-combine", Series: s.name, Unit: "combined %",
				Label: fmt.Sprintf("keys=%d", keys), X: float64(keys), Mops: ratio,
			})
		}
	}
	return out, nil
}

// runWriteback runs one cell: a write-only zipfian YCSB load over keys
// distinct keys against a fresh Montage store with the given drain
// parallelism. It returns (Mops virtual, combined write-backs per 100
// staged, the cell's runtime-counter delta).
func runWriteback(scale Scale, threads, keys, drainWorkers int) (float64, float64, *obs.Snapshot, error) {
	costs := simclock.DefaultCosts()
	sys, err := core.NewSystem(core.Config{
		ArenaSize:  scale.ArenaSize,
		MaxThreads: threads,
		Epoch: epoch.Config{
			MaxThreads: threads,
			// A small buffer makes overflow flushes — the traffic write
			// combining absorbs — common instead of exceptional.
			BufferSize:   8,
			EpochLengthV: scale.EpochLenV,
		},
		Costs:        &costs,
		DrainWorkers: drainWorkers,
		Recorder:     scale.Recorder,
	})
	if err != nil {
		return 0, 0, nil, err
	}
	defer sys.Close()
	store := kvstore.New(kvstore.NewMontageBackend(pds.NewHashMap(sys, scale.Buckets)), 0)

	val := value(scale.ValueSize)
	records := uint64(keys)
	for i := uint64(0); i < records; i++ {
		if err := store.Set(0, ycsb.Key(i), val); err != nil {
			return 0, 0, nil, err
		}
	}
	sys.Sync(0)
	sys.Clock().Reset()
	sys.Epochs().ResetVirtualTimer()
	base := sys.Stats()

	workloads := make([]*ycsb.Workload, threads)
	for tid := range workloads {
		// ReadFrac 0: every op is a Set, the path write combining serves.
		workloads[tid] = ycsb.NewWorkload(records, 0, scale.Seed+int64(tid))
	}
	var firstErr error
	mops := runWorkers(sys.Clock(), threads, scale.OpsPerThread, func(tid, i int) {
		op := workloads[tid].Next()
		if err := store.Set(tid, op.Key, val); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	if firstErr != nil {
		return 0, 0, nil, firstErr
	}

	delta := sys.Stats().Sub(base)
	// An update is "combined" when it was absorbed before commit: either
	// a staged write-back landed on an already-staged block (the device's
	// newest-wins coalescing) or a same-epoch re-persist took the
	// nonblocking engine's dirty-mark fast path and never re-encoded at
	// all. Dirty hits don't pass through WriteBack, so both sides of the
	// ratio must include them for the figure to keep measuring absorption
	// rather than which layer absorbed.
	staged := delta.Device.WriteBacks + delta.Epoch.PersistDirtyHits
	var ratio float64
	if staged > 0 {
		combined := delta.Device.WriteBackCoalesced + delta.Epoch.PersistDirtyHits
		ratio = float64(combined) / float64(staged) * 100
	}
	return mops, ratio, &delta, nil
}
