// Package core implements the Montage runtime: the paper's Recoverable
// base class, payload lifecycle (PNEW, PDELETE, get/set with old-see-new
// detection), the buffered-durable-linearizability contract, and the
// whole-system recovery driver.
//
// The division of labor follows the paper exactly. The data structure
// keeps its index in transient memory and performs all synchronization
// there; only payloads — the semantic state — live in the persistent
// arena. Operations that create or modify payloads bracket themselves
// with BeginOp/EndOp (or DoOp); Montage labels every payload with the
// operation's epoch, buffers its write-back, and guarantees that epoch
// e's payloads persist atomically when the clock ticks from e+1 to e+2.
// After a crash in epoch e, Recover discards epochs e and e-1 and hands
// the surviving payloads to the structure's rebuild routine.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"montage/internal/epoch"
	"montage/internal/obs"
	"montage/internal/pmem"
	"montage/internal/ralloc"
	"montage/internal/simclock"
)

// ErrOldSeeNew is the Go rendering of the paper's OldSeeNewException: an
// operation running in epoch e touched a payload created in an epoch
// newer than e. The usual response is to abort the operation and retry
// it in the newer epoch (see DoOp's retry loop in the data structure
// packages); operations that can prove the access harmless may use
// GetUnsafe instead.
var ErrOldSeeNew = errors.New("montage: operation saw a payload from a newer epoch")

// Config configures a Montage system.
type Config struct {
	// ArenaSize is the persistent arena size in bytes.
	ArenaSize int
	// MaxThreads is the number of worker thread ids.
	MaxThreads int
	// Epoch tunes the epoch system (buffer size, policies, epoch length).
	// MaxThreads is filled in from the outer config.
	Epoch epoch.Config
	// Costs, when non-nil, attaches a virtual-time cost model for the
	// benchmark harness.
	Costs *simclock.Costs
	// SuperblockSize overrides the allocator superblock size.
	SuperblockSize int
	// DrainWorkers fixes the parallelism of the device's epoch-boundary
	// drain: the combined cross-thread write-back batch is partitioned
	// over this many commit workers. 0 (the default) sizes it
	// automatically from GOMAXPROCS; 1 forces a serial drain.
	DrainWorkers int
	// Recorder, when non-nil, is the observability recorder the system
	// reports to; sharing one recorder across systems aggregates their
	// counters (the benchmark harness does this). When nil, NewSystem and
	// Recover create a private recorder sized for MaxThreads.
	Recorder *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.ArenaSize == 0 {
		c.ArenaSize = 64 << 20
	}
	if c.MaxThreads == 0 {
		c.MaxThreads = 1
	}
	c.Epoch.MaxThreads = c.MaxThreads
	return c
}

// System is one Montage instance: a persistent arena, its allocator, and
// an epoch system, shared by any number of data structures.
type System struct {
	cfg  Config
	dev  *pmem.Device
	heap *ralloc.Heap
	esys *epoch.Sys
	clk  *simclock.Clock
	rec  *obs.Recorder
	uid  atomic.Uint64
}

// recorderFor returns the configured shared recorder or a fresh private
// one.
func recorderFor(cfg Config) *obs.Recorder {
	if cfg.Recorder != nil {
		return cfg.Recorder
	}
	return obs.New(cfg.MaxThreads)
}

// NewSystem creates a Montage system over a fresh simulated-NVM arena.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	var clk *simclock.Clock
	if cfg.Costs != nil {
		clk = simclock.New(cfg.MaxThreads, *cfg.Costs)
	}
	rec := recorderFor(cfg)
	dev := pmem.NewDevice(cfg.ArenaSize, cfg.MaxThreads, clk)
	dev.SetDrainWorkers(cfg.DrainWorkers)
	// Attach the recorder before the heap and epoch system are built so
	// both inherit it (the epoch daemon may start ticking immediately).
	dev.SetRecorder(rec)
	heap, err := ralloc.New(dev, cfg.MaxThreads, ralloc.Options{SuperblockSize: cfg.SuperblockSize})
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, dev: dev, heap: heap, clk: clk, rec: rec}
	s.esys = epoch.New(heap, cfg.Epoch)
	return s, nil
}

// Device exposes the underlying simulated NVM device (for crash tests
// and image save/load).
func (s *System) Device() *pmem.Device { return s.dev }

// Heap exposes the allocator (for statistics).
func (s *System) Heap() *ralloc.Heap { return s.heap }

// Epochs exposes the epoch system.
func (s *System) Epochs() *epoch.Sys { return s.esys }

// Clock returns the attached virtual clock, or nil.
func (s *System) Clock() *simclock.Clock { return s.clk }

// Recorder returns the system's observability recorder.
func (s *System) Recorder() *obs.Recorder { return s.rec }

// Stats returns a point-in-time snapshot of the system's runtime
// counters: epoch advances and drains, device write-backs and fences,
// operation/retry counts, allocator usage, and latency histograms.
func (s *System) Stats() obs.Snapshot { return s.rec.Snapshot() }

// Advance manually advances the epoch once (mostly for tests; normal
// configurations advance via the background daemon or at operation
// boundaries).
func (s *System) Advance() { s.esys.Advance() }

// Sync blocks until all operations completed before the call are
// durable: the file-system fsync analogue, implemented as a two-epoch
// advance in which the caller helps write back its peers' buffers. It
// must not be called between BeginOp and EndOp.
func (s *System) Sync(tid int) { s.esys.Sync(tid) }

// Close stops background activity and flushes all completed work.
func (s *System) Close() { s.esys.Close() }

// Abandon stops the epoch daemon without the final flushing advances of
// Close. It is the correct teardown for a System whose device crashed:
// the stale buffers and clock must never reach the device that a
// recovered System now owns. After Abandon, drop the System.
func (s *System) Abandon() { s.esys.Abandon() }

// Checkpoint forces all completed work durable (Sync) and writes the
// device image to path, so a later process can reopen the pool with
// pmem.NewDeviceFromFile and Recover. It must not be called between
// BeginOp and EndOp.
func (s *System) Checkpoint(tid int, path string) error {
	s.esys.Sync(tid)
	return s.dev.Save(path)
}

// Op is a handle on an in-flight update operation. All payload
// mutations go through it.
type Op struct {
	sys   *System
	tid   int
	epoch uint64
}

// TID returns the worker thread id the operation runs on.
func (op Op) TID() int { return op.tid }

// Epoch returns the epoch the operation runs in.
func (op Op) Epoch() uint64 { return op.epoch }

// BeginOp starts an update operation on thread tid. Prefer DoOp, which
// pairs it with EndOp automatically (the BEGIN_OP_AUTOEND idiom).
func (s *System) BeginOp(tid int) Op {
	s.rec.Inc(tid, obs.COps)
	e := s.esys.BeginOp(tid)
	return Op{sys: s, tid: tid, epoch: e}
}

// EndOp completes an update operation.
func (s *System) EndOp(tid int) { s.esys.EndOp(tid) }

// DoOp runs fn inside a BeginOp/EndOp bracket.
func (s *System) DoOp(tid int, fn func(op Op) error) error {
	op := s.BeginOp(tid)
	defer s.EndOp(tid)
	return fn(op)
}

// DoOpRetry runs fn like DoOp, restarting it in a fresh epoch whenever it
// reports ErrOldSeeNew. This is the paper's "roll back what it has done
// so far and start over in the newer epoch" response; the data structure
// must make fn idempotent up to its linearization point.
func (s *System) DoOpRetry(tid int, fn func(op Op) error) error {
	for {
		err := s.DoOp(tid, fn)
		if !errors.Is(err, ErrOldSeeNew) {
			return err
		}
		s.rec.Inc(tid, obs.COpRetries)
	}
}

// CheckEpoch returns ErrOldSeeNew if the operation's epoch is no longer
// current. Nonblocking structures call it immediately before their
// linearizing CAS.
func (op Op) CheckEpoch() error {
	if !op.sys.esys.CheckEpoch(op.tid) {
		return fmt.Errorf("%w (epoch advanced past %d)", ErrOldSeeNew, op.epoch)
	}
	return nil
}

// nextUID allocates a fresh payload uid.
func (s *System) nextUID() uint64 { return s.uid.Add(1) }
