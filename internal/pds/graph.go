package pds

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"montage/internal/core"
)

// Graph is the general Montage graph of Section 6.3, the paper's
// demonstration that Montage handles any abstraction made of items and
// relationships. Persistence follows the paper's pointer-chain rule:
// edge payloads *name* their endpoint vertices (by id), vertices do not
// reference their edges, so no persistent pointer chains exist and a
// change to one payload never cascades. Connectivity is kept in a
// transient adjacency index and rebuilt on recovery.
//
// The graph is undirected; an edge {u,v} is stored once under the
// canonical (min,max) order. Vertex operations lock the stripe set they
// touch in ascending order, making the locking deadlock-free.
type Graph struct {
	sys     *core.System
	tag     uint16
	stripes []graphStripe
	mask    uint64
}

type graphStripe struct {
	mu       sync.Mutex
	vertices map[uint64]*vertexNode
}

// vertexNode is the transient vertex object: the only pointer to the
// vertex payload plus the adjacency set, each neighbor entry holding the
// only pointer to the corresponding edge payload.
type vertexNode struct {
	id      uint64
	payload *core.PBlk
	edges   map[uint64]*edgeRef // neighbor id -> shared edge ref
}

// edgeRef indirects the edge payload pointer so that both endpoints'
// adjacency entries share one rewrite point (constraint 4).
type edgeRef struct {
	payload *core.PBlk
}

const (
	tagVertex byte = 'V'
	tagEdge   byte = 'E'
)

func encodeVertex(id uint64, attr []byte) []byte {
	buf := make([]byte, 9+len(attr))
	buf[0] = tagVertex
	binary.LittleEndian.PutUint64(buf[1:], id)
	copy(buf[9:], attr)
	return buf
}

func decodeVertex(data []byte) (id uint64, attr []byte, ok bool) {
	if len(data) < 9 || data[0] != tagVertex {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint64(data[1:]), data[9:], true
}

func encodeEdge(src, dst uint64, attr []byte) []byte {
	buf := make([]byte, 17+len(attr))
	buf[0] = tagEdge
	binary.LittleEndian.PutUint64(buf[1:], src)
	binary.LittleEndian.PutUint64(buf[9:], dst)
	copy(buf[17:], attr)
	return buf
}

func decodeEdge(data []byte) (src, dst uint64, attr []byte, ok bool) {
	if len(data) < 17 || data[0] != tagEdge {
		return 0, 0, nil, false
	}
	return binary.LittleEndian.Uint64(data[1:]), binary.LittleEndian.Uint64(data[9:]), data[17:], true
}

// NewGraph creates an empty graph with nStripes lock stripes (rounded up
// to a power of two) carrying the default TagGraph.
func NewGraph(sys *core.System, nStripes int) *Graph {
	return NewGraphTagged(sys, nStripes, TagGraph)
}

// NewGraphTagged creates an empty graph whose payloads carry tag.
func NewGraphTagged(sys *core.System, nStripes int, tag uint16) *Graph {
	n := 1
	for n < nStripes {
		n *= 2
	}
	g := &Graph{sys: sys, tag: tag, stripes: make([]graphStripe, n), mask: uint64(n - 1)}
	for i := range g.stripes {
		g.stripes[i].vertices = make(map[uint64]*vertexNode)
	}
	return g
}

func (g *Graph) stripe(id uint64) *graphStripe { return &g.stripes[id&g.mask] }

// lockStripes acquires the distinct stripes covering ids, in ascending
// stripe order, and returns an unlock function.
func (g *Graph) lockStripes(ids ...uint64) func() {
	seen := make([]int, 0, len(ids))
	for _, id := range ids {
		s := int(id & g.mask)
		dup := false
		for _, x := range seen {
			if x == s {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, s)
		}
	}
	sort.Ints(seen)
	for _, s := range seen {
		g.stripes[s].mu.Lock()
	}
	return func() {
		for i := len(seen) - 1; i >= 0; i-- {
			g.stripes[seen[i]].mu.Unlock()
		}
	}
}

// lockAll acquires every stripe (used by RemoveVertex, whose edge set is
// unknown until the vertex is inspected).
func (g *Graph) lockAll() func() {
	for i := range g.stripes {
		g.stripes[i].mu.Lock()
	}
	return func() {
		for i := len(g.stripes) - 1; i >= 0; i-- {
			g.stripes[i].mu.Unlock()
		}
	}
}

// AddVertex creates a vertex and, atomically with it, edges to the given
// neighbor ids (missing neighbors are skipped). It reports whether the
// vertex was created (false if the id already exists).
func (g *Graph) AddVertex(tid int, id uint64, attr []byte, neighbors []uint64) (bool, error) {
	g.sys.Clock().ChargeOp(tid)
	ids := append([]uint64{id}, neighbors...)
	unlock := g.lockStripes(ids...)
	defer unlock()
	if _, exists := g.stripe(id).vertices[id]; exists {
		return false, nil
	}
	err := g.sys.DoOp(tid, func(op core.Op) error {
		p, err := op.PNewTagged(g.tag, encodeVertex(id, attr))
		if err != nil {
			return err
		}
		v := &vertexNode{id: id, payload: p, edges: make(map[uint64]*edgeRef)}
		g.stripe(id).vertices[id] = v
		for _, nb := range neighbors {
			if nb == id {
				continue
			}
			nv, ok := g.stripe(nb).vertices[nb]
			if !ok {
				continue
			}
			if _, dup := v.edges[nb]; dup {
				continue
			}
			ep, err := op.PNewTagged(g.tag, encodeEdge(min64(id, nb), max64(id, nb), nil))
			if err != nil {
				return err
			}
			ref := &edgeRef{payload: ep}
			v.edges[nb] = ref
			nv.edges[id] = ref
		}
		return nil
	})
	return err == nil, err
}

// RemoveVertex deletes a vertex and all adjacent edges atomically,
// reporting whether the vertex existed.
func (g *Graph) RemoveVertex(tid int, id uint64) (bool, error) {
	g.sys.Clock().ChargeOp(tid)
	unlock := g.lockAll()
	defer unlock()
	v, ok := g.stripe(id).vertices[id]
	if !ok {
		return false, nil
	}
	err := g.sys.DoOp(tid, func(op core.Op) error {
		for nb, ref := range v.edges {
			if err := op.PDelete(ref.payload); err != nil {
				return err
			}
			if nv, ok := g.stripe(nb).vertices[nb]; ok {
				delete(nv.edges, id)
			}
		}
		if err := op.PDelete(v.payload); err != nil {
			return err
		}
		delete(g.stripe(id).vertices, id)
		return nil
	})
	return err == nil, err
}

// AddEdge creates the edge {src,dst} with the given attribute, reporting
// whether it was created (false if either vertex is missing or the edge
// exists). Per the paper, AddEdge does not touch any vertex payload.
func (g *Graph) AddEdge(tid int, src, dst uint64, attr []byte) (bool, error) {
	g.sys.Clock().ChargeOp(tid)
	if src == dst {
		return false, nil
	}
	unlock := g.lockStripes(src, dst)
	defer unlock()
	sv, ok1 := g.stripe(src).vertices[src]
	dv, ok2 := g.stripe(dst).vertices[dst]
	if !ok1 || !ok2 {
		return false, nil
	}
	if _, dup := sv.edges[dst]; dup {
		return false, nil
	}
	err := g.sys.DoOp(tid, func(op core.Op) error {
		ep, err := op.PNewTagged(g.tag, encodeEdge(min64(src, dst), max64(src, dst), attr))
		if err != nil {
			return err
		}
		ref := &edgeRef{payload: ep}
		sv.edges[dst] = ref
		dv.edges[src] = ref
		return nil
	})
	return err == nil, err
}

// RemoveEdge deletes the edge {src,dst}, reporting whether it existed.
func (g *Graph) RemoveEdge(tid int, src, dst uint64) (bool, error) {
	g.sys.Clock().ChargeOp(tid)
	unlock := g.lockStripes(src, dst)
	defer unlock()
	sv, ok := g.stripe(src).vertices[src]
	if !ok {
		return false, nil
	}
	ref, ok := sv.edges[dst]
	if !ok {
		return false, nil
	}
	err := g.sys.DoOp(tid, func(op core.Op) error {
		if err := op.PDelete(ref.payload); err != nil {
			return err
		}
		delete(sv.edges, dst)
		if dv, ok := g.stripe(dst).vertices[dst]; ok {
			delete(dv.edges, src)
		}
		return nil
	})
	return err == nil, err
}

// SetEdgeAttr updates an edge's attribute in place (exercises the
// UPDATE-payload path on graphs).
func (g *Graph) SetEdgeAttr(tid int, src, dst uint64, attr []byte) (bool, error) {
	g.sys.Clock().ChargeOp(tid)
	unlock := g.lockStripes(src, dst)
	defer unlock()
	sv, ok := g.stripe(src).vertices[src]
	if !ok {
		return false, nil
	}
	ref, ok := sv.edges[dst]
	if !ok {
		return false, nil
	}
	err := g.sys.DoOp(tid, func(op core.Op) error {
		np, err := op.Set(ref.payload, encodeEdge(min64(src, dst), max64(src, dst), attr))
		if err != nil {
			return err
		}
		ref.payload = np // single rewrite point shared by both endpoints
		return nil
	})
	return err == nil, err
}

// SetVertexAttr updates a vertex's attribute in place (AddEdge and
// RemoveEdge never touch vertex payloads, so this is the only vertex
// update path).
func (g *Graph) SetVertexAttr(tid int, id uint64, attr []byte) (bool, error) {
	g.sys.Clock().ChargeOp(tid)
	st := g.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	v, ok := st.vertices[id]
	if !ok {
		return false, nil
	}
	err := g.sys.DoOp(tid, func(op core.Op) error {
		np, err := op.Set(v.payload, encodeVertex(id, attr))
		if err != nil {
			return err
		}
		v.payload = np
		return nil
	})
	return err == nil, err
}

// VertexAttr returns a copy of a vertex's attribute.
func (g *Graph) VertexAttr(tid int, id uint64) ([]byte, bool) {
	g.sys.Clock().ChargeOp(tid)
	st := g.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	v, ok := st.vertices[id]
	if !ok {
		return nil, false
	}
	_, attr, okd := decodeVertex(g.sys.Read(tid, v.payload))
	if !okd {
		return nil, false
	}
	return append([]byte(nil), attr...), true
}

// HasVertex reports whether id exists.
func (g *Graph) HasVertex(tid int, id uint64) bool {
	g.sys.Clock().ChargeOp(tid)
	st := g.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.vertices[id]
	return ok
}

// HasEdge reports whether the edge {src,dst} exists.
func (g *Graph) HasEdge(tid int, src, dst uint64) bool {
	g.sys.Clock().ChargeOp(tid)
	unlock := g.lockStripes(src, dst)
	defer unlock()
	sv, ok := g.stripe(src).vertices[src]
	if !ok {
		return false
	}
	_, ok = sv.edges[dst]
	return ok
}

// Neighbors returns the neighbor ids of id (nil if absent).
func (g *Graph) Neighbors(tid int, id uint64) []uint64 {
	g.sys.Clock().ChargeOp(tid)
	st := g.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	v, ok := st.vertices[id]
	if !ok {
		return nil
	}
	out := make([]uint64, 0, len(v.edges))
	for nb := range v.edges {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Order returns the number of vertices; SizeEdges the number of edges.
func (g *Graph) Order() int {
	n := 0
	for i := range g.stripes {
		g.stripes[i].mu.Lock()
		n += len(g.stripes[i].vertices)
		g.stripes[i].mu.Unlock()
	}
	return n
}

// SizeEdges returns the number of (undirected) edges.
func (g *Graph) SizeEdges() int {
	n := 0
	for i := range g.stripes {
		g.stripes[i].mu.Lock()
		for _, v := range g.stripes[i].vertices {
			for nb := range v.edges {
				if v.id < nb {
					n++
				} else if v.id == nb {
					n++ // defensive; self loops are rejected on insert
				}
			}
		}
		g.stripes[i].mu.Unlock()
	}
	return n
}

// RecoverGraph rebuilds a graph from recovered payloads using the
// paper's parallel scheme: vertices are distributed cyclically among
// workers (owner = id mod workers), and each worker sorts the edges it
// encounters into per-owner buffers that the owners then apply — so the
// rebuild itself needs no locking.
func RecoverGraph(sys *core.System, nStripes int, chunks [][]*core.PBlk) (*Graph, error) {
	return RecoverGraphTagged(sys, nStripes, chunks, TagGraph)
}

// RecoverGraphTagged rebuilds a graph from the payloads carrying tag.
func RecoverGraphTagged(sys *core.System, nStripes int, chunks [][]*core.PBlk, tag uint16) (*Graph, error) {
	g := NewGraphTagged(sys, nStripes, tag)
	filtered := make([][]*core.PBlk, len(chunks))
	for i, c := range chunks {
		filtered[i] = core.FilterByTag(c, tag)
	}
	chunks = filtered
	workers := len(chunks)
	if workers == 0 {
		return g, nil
	}

	type edgeRec struct {
		src, dst uint64
		p        *core.PBlk
	}
	type vertRec struct {
		id uint64
		p  *core.PBlk
	}
	// Phase 1: classify payloads; route records to their owners.
	vertBuf := make([][][]vertRec, workers) // [from][to]
	edgeBuf := make([][][]edgeRec, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := range chunks {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vertBuf[w] = make([][]vertRec, workers)
			edgeBuf[w] = make([][]edgeRec, workers)
			for _, p := range chunks[w] {
				data := sys.Read(w, p)
				if len(data) == 0 {
					errs[w] = fmt.Errorf("%w: empty graph payload", ErrCorruptPayload)
					return
				}
				switch data[0] {
				case tagVertex:
					id, _, ok := decodeVertex(data)
					if !ok {
						errs[w] = ErrCorruptPayload
						return
					}
					o := int(id) % workers
					vertBuf[w][o] = append(vertBuf[w][o], vertRec{id, p})
				case tagEdge:
					src, dst, _, ok := decodeEdge(data)
					if !ok {
						errs[w] = ErrCorruptPayload
						return
					}
					// The edge goes to both endpoint owners; the lower
					// owner creates the shared ref in phase 2 and the
					// higher one links it in phase 3.
					o := int(src) % workers
					edgeBuf[w][o] = append(edgeBuf[w][o], edgeRec{src, dst, p})
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: each owner inserts its vertices (disjoint id sets, but
	// stripes are shared across owners, so stripe maps are filled under
	// the stripe lock).
	for o := 0; o < workers; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			for w := 0; w < workers; w++ {
				for _, vr := range vertBuf[w][o] {
					st := g.stripe(vr.id)
					st.mu.Lock()
					st.vertices[vr.id] = &vertexNode{id: vr.id, payload: vr.p, edges: make(map[uint64]*edgeRef)}
					st.mu.Unlock()
				}
			}
		}(o)
	}
	wg.Wait()

	// Phase 3: owners apply their edge buffers, linking both endpoints.
	for o := 0; o < workers; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			for w := 0; w < workers; w++ {
				for _, er := range edgeBuf[w][o] {
					unlock := g.lockStripes(er.src, er.dst)
					sv, ok1 := g.stripe(er.src).vertices[er.src]
					dv, ok2 := g.stripe(er.dst).vertices[er.dst]
					if ok1 && ok2 {
						ref := &edgeRef{payload: er.p}
						sv.edges[er.dst] = ref
						dv.edges[er.src] = ref
					} else {
						errs[o] = fmt.Errorf("%w: edge {%d,%d} references missing vertex", ErrCorruptPayload, er.src, er.dst)
					}
					unlock()
				}
			}
		}(o)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
