package epoch

import (
	"time"

	"montage/internal/obs"
	"montage/internal/pmem"
	"montage/internal/simclock"
)

// This file implements the nonblocking advance engine, following the
// nbMontage design ("Fast Nonblocking Persistence for Concurrent Data
// Structures", Cai et al.): per-epoch shared to-be-persisted state, a
// CAS-published clock, and a helping path where any thread can finish a
// lagging advance. The differences from the blocking engine
// (advance.go's advanceLocked) are:
//
//   - No quiescence wait. waitAll is gone; a stalled operation never
//     blocks the persistence frontier. A straddler's later payloads are
//     persisted under its old epoch tag by the frontier self-fence rule
//     below, so every operation that completes is durable once
//     PersistedEpoch reaches its epoch, straddler or not.
//
//   - Eager publication with dirty coalescing. The first AddToPersist
//     for a payload in an epoch encodes it into the device's per-thread
//     write-combining staging buffer (persistEager) instead of parking
//     the Persistable in a container for a boundary scan; every later
//     same-epoch call just marks the staged entry dirty (an epoch-tagged
//     seqno plus the payload's encoder) and skips the encode. The
//     deferred encode runs at most once more, always on the owner's own
//     path or against a provably quiescent epoch — the straddler
//     self-fence settles it, the advance sweep settles it once the epoch
//     is closed and no operation is active in it, and a helper's claim
//     that finds an un-settled dirty entry leaves it for the owner. So a
//     hot payload costs one encode per epoch (the blocking engine's
//     dedup) while helpers only ever touch encoded bytes: the owner
//     remains the only thread that serializes a payload anyone could
//     still be mutating. Committing a staged write earlier than its
//     epoch boundary is always safe: recovery's epoch cutoff filters
//     anything newer than durable-clock minus two. The inverse hazard —
//     certifying an epoch whose marks were never encoded — is closed by
//     the dirty-backlog gate in advanceNB: while any entry tagged
//     <= curr-1 awaits its settle, the advance aborts without touching
//     either clock, so no ack can ever ride a certification that an
//     un-encoded update would contradict.
//
//   - Claim-based helping. The drain step is Device.DrainShared: each
//     thread's staged batch is claimed under that thread's buffer lock,
//     so any number of helpers (daemon pacer, Sync callers, epoch-wait
//     helpers) drain concurrently without double-committing or dropping
//     a block.
//
//   - CAS-published clock. The durable clock is written first through a
//     monotone high-water mark (writeClockAtLeast), then the volatile
//     clock is CAS-advanced. A helper that loses the CAS has still
//     helped: its drain committed staged work and its durable-clock
//     write was subsumed by the winner's.
//
// Crash-recovery argument. The durable clock only reaches curr+1 after
// some helper's DrainShared returned with every batch staged before its
// claims committed (or self-fenced by the frontier rule); recovery's
// cutoff keeps epochs <= durable-2, all of which were fully drained by
// the advance that wrote durable = cutoff+2. A crash between the
// durable write and the volatile CAS leaves the durable clock ahead of
// anything announced — the same one-ahead window the blocking engine
// has, and safe for the same reason.

// frontierMax raises the announced persistence frontier to at least e
// (monotone CAS-max).
func (s *Sys) frontierMax(e uint64) {
	for {
		cur := s.nbFrontier.Load()
		if cur >= e || s.nbFrontier.CompareAndSwap(cur, e) {
			return
		}
	}
}

// writeClockAtLeast durably commits the epoch clock to at least e. The
// monotone mirror makes the write idempotent across racing helpers: a
// stale helper still carrying an older target returns without touching
// the media, so the durable clock never regresses.
func (s *Sys) writeClockAtLeast(tid int, e uint64) {
	if s.durClock.Load() >= e {
		return
	}
	s.clockMu.Lock()
	if s.durClock.Load() < e {
		s.writeClock(tid, e)
		s.durClock.Store(e)
	}
	s.clockMu.Unlock()
}

// DurableClock returns the high-water mark of durably committed clock
// values. Under the nonblocking engine it may run ahead of Epoch() by
// one (the durable-first window); under the blocking engine it tracks
// Epoch() exactly.
func (s *Sys) DurableClock() uint64 { return s.durClock.Load() }

// persistEager is the nonblocking engine's AddToPersist. The first call
// for a payload in an epoch serializes it into the owner's staging
// buffer (the shared to-be-persisted container of nbMontage); every
// subsequent same-epoch call takes the dirty-coalescing fast path:
// MarkDirty tags the already-staged entry with the epoch and the
// payload's encoder and skips the encode entirely. The deferred encode
// (settleEntry) runs at most once more — on the straddler self-fence
// below, or in an advance's settle sweep once the epoch is quiescent —
// so a hot payload pays one encode per epoch, like the blocking engine's
// boundary dedup, while helpers still commit everything.
//
// The frontier check closes the straddler hole for both paths: if an
// advance that makes epoch e durable has already announced itself
// (frontier >= e+2), its claims may have passed this thread's buffer
// before the stage or mark landed, so the owner settles (dirty path) and
// commits the payload itself. The ordering argument is lock-mediated: a
// helper stores the frontier before claiming this thread's staging
// buffer (both under the buffer's mutex), and the stage/mark above also
// ran under that mutex — so if the helper's claim missed this payload,
// the stage ran after the claim, and the frontier load below must
// observe the helper's store. The same argument covers a helper's
// dirty-backlog gate scan (also under the buffer's mutex): a mark the
// scan missed self-fences here instead.
func (s *Sys) persistEager(tid int, e uint64, p Persistable) {
	rec := s.stats.Get()
	rec.Inc(tid, obs.CPersistQueued)
	if s.cfg.EpochPayloads > 0 {
		s.plCount.Add(1)
	}
	if s.dev.MarkDirty(tid, p.PAddr(), e, p) {
		rec.Inc(tid, obs.CPersistDirtyHits)
		if s.nbFrontier.Load() >= e+2 {
			// Only the owner may serialize the payload, so the deferred
			// encode must run here, on the owner's own path, before the
			// fence that races the in-flight advance.
			s.dev.SettleOwn(tid, p.PAddr(), s.settleFn)
			s.dev.Fence(tid)
			rec.Inc(tid, obs.CPersistLateFence)
		}
		return
	}
	s.flushOne(tid, p, obs.CPersistEager)
	if s.nbFrontier.Load() >= e+2 {
		s.dev.Fence(tid)
		rec.Inc(tid, obs.CPersistLateFence)
	}
}

// settleEntry is the deferred-encode probe for a dirty staged entry:
// report the payload's current encoded size and let the device serialize
// its current image into the staging buffer (the entry's mark-time size
// can be stale — a same-epoch re-update from another thread grows the
// payload through that thread's own staged copy, never through this
// entry). Marks the payload flushed, exactly what the eager path's
// flushOne did minus the device-level staging bookkeeping (the entry
// already exists). Declines dead payloads — a same-epoch delete staged a
// header invalidation over the entry already, so this is a
// belt-and-braces skip, charged to nothing so the pending-payload
// accounting (resolved at mark time) stays exact.
func (s *Sys) settleEntry(tid int, enc pmem.Encoder) (int, bool) {
	p, ok := enc.(Persistable)
	if !ok || p.PDead() {
		return 0, false
	}
	n := p.PEncodedSize()
	p.MarkFlushed()
	rec := s.stats.Get()
	rec.Inc(tid, obs.CPersistLazyEncodes)
	rec.Add(tid, obs.CPersistBytes, uint64(n))
	return n, true
}

// settleSweepNB runs the deferred encodes for every dirty entry whose
// epoch is closed and quiescent: the entry's tag is below the current
// clock (no new operation can join that epoch) and no thread has an
// active operation registered in it (no straddler can still be mutating
// the payload in place — operations mutate and stage under their bucket
// lock, and a thread's active slot is set, sequentially consistent,
// before any mutation). An entry whose epoch is still open or still has
// a straddler stays dirty; the dirty-backlog gate below keeps the clock
// from certifying it.
func (s *Sys) settleSweepNB(chargeTid int, curr uint64) {
	s.dev.SettleAll(chargeTid, func(tag uint64) bool {
		if tag >= curr {
			return false
		}
		for i := range s.threads {
			if s.threads[i].active.Load() == tag {
				return false
			}
		}
		return true
	}, s.settleFn)
}

// advanceNB is one nonblocking advance attempt, charged to chargeTid. It
// performs the full help — reclaim eligible retired blocks, announce the
// frontier, drain staged work, push the durable clock — and then tries
// to publish the new volatile clock value. It reports whether this
// attempt won the publish; losing means a racing helper won, i.e. the
// clock moved anyway.
func (s *Sys) advanceNB(chargeTid int) bool {
	rec := s.stats.Get()
	curr := s.epoch.Load()
	advStart := rec.Start()
	rec.Trace(chargeTid, obs.TraceAdvanceStart, curr, 0)
	rec.Inc(chargeTid, obs.CAdvHelps)
	if s.clk != nil && chargeTid == simclock.DaemonTID {
		// The daemon wakes up "now": align its virtual clock with the
		// workers before charging it for boundary work.
		s.clk.SetAtLeast(simclock.DaemonTID, s.clk.Max())
	}
	if !s.cfg.Transient {
		// Reclaim retired blocks first so their staged header
		// invalidations ride this advance's drain, as in the blocking
		// engine.
		if !s.cfg.LocalFree && !s.cfg.DirectFree && curr >= 2 {
			s.reclaimEligibleNB(chargeTid, curr)
		}
		// Announce the advance target BEFORE claiming staged batches: a
		// writer that stages an epoch-(curr-1) payload after our claims
		// passed its buffer observes frontier >= curr+1 (through its own
		// staging-buffer lock) and self-fences, so no straddler payload
		// is left volatile behind a durable clock that promises it.
		s.frontierMax(curr + 1)
		// Run the deferred encodes for quiescent epochs so the drain
		// below can claim their entries with current bytes.
		s.settleSweepNB(chargeTid, curr)
		s.dev.DrainShared(chargeTid)
		// Dirty-backlog gate: if any entry tagged <= curr-1 still awaits
		// its deferred encode (a straddler holds its epoch open, so the
		// sweep had to leave it), this advance must ABORT — writing the
		// durable clock to curr+1 would certify epoch curr-1 durable
		// while one of its updates exists only as an un-encoded mark.
		// Nothing binding is lost by aborting: sync and epoch-wait acks
		// ride the clock this gate is holding back. A mark that lands
		// after this scan self-fences against the frontier announced
		// above (see persistEager), so the scan and the frontier rule
		// together cover every interleaving.
		if curr >= 1 && s.dev.DirtyBacklog(curr-1) {
			rec.Inc(chargeTid, obs.CAdvDirtyStalls)
			rec.Trace(chargeTid, obs.TraceAdvanceEnd, curr, 2)
			return false
		}
		if s.cfg.PersistDelay > 0 {
			time.Sleep(s.cfg.PersistDelay)
		}
		// Durable clock first, volatile publish second — the same
		// invariant the blocking engine maintains (see advanceLocked
		// step 5 and TestAdvancePublishesDurableClockFirst).
		s.writeClockAtLeast(chargeTid, curr+1)
	}
	if !s.epoch.CompareAndSwap(curr, curr+1) {
		// A racing helper published first. Everything we drained is
		// durable regardless; the attempt was pure help.
		rec.Inc(chargeTid, obs.CAdvCASFails)
		rec.Trace(chargeTid, obs.TraceAdvanceEnd, s.epoch.Load(), 1)
		return false
	}
	if s.clk != nil {
		s.lastAdvV.Store(s.clk.Max())
	}
	s.lastAdvOps.Store(s.opCount.Load())
	s.lastAdvPls.Store(s.plCount.Load())
	s.advances.Add(1)
	// Persist tick: epoch curr-1 just became durable. Wake every
	// PersistTick/WaitPersisted subscriber.
	s.persistMu.Lock()
	close(s.persistCh)
	s.persistCh = make(chan struct{})
	s.persistMu.Unlock()
	rec.Inc(chargeTid, obs.CEpochAdvances)
	rec.ObserveSince(chargeTid, obs.HAdvanceNs, advStart)
	rec.Trace(chargeTid, obs.TraceAdvanceEnd, curr+1, 0)
	return true
}

// reclaimEligibleNB frees retired blocks whose reclamation is both
// durable-safe and memory-safe without waitAll's quiescence. A to_free
// slot labeled L is durable-safe once the clock reaches L+2 (label <=
// curr-2, the blocking engine's schedule). Memory safety is the part
// quiescence used to provide: an operation still active in an epoch <=
// L+1 may have begun before L's retirements were two epochs old and
// could still hold a reference into a block about to be freed, so such
// a slot is deferred, not freed. Deferral is why all four slots are
// swept (not just curr-2): a slot held back by a straddler must be
// revisited by a later advance, or the next AddToFree to reuse its slot
// index would wipe the addresses and leak the blocks. The frontier and
// the clock never wait — only reclamation does, which is exactly the
// nbMontage split: a stalled thread delays memory reuse, never
// persistence.
func (s *Sys) reclaimEligibleNB(chargeTid int, curr uint64) {
	minActive := ^uint64(0)
	for i := range s.threads {
		if a := s.threads[i].active.Load(); a != 0 && a < minActive {
			minActive = a
		}
	}
	// An operation that registers after this scan verifies its epoch
	// against a clock value >= curr (sequentially consistent atomics), so
	// it can never hold a reference to a block retired at label <=
	// curr-2: the retirement unlinked the block from the volatile
	// structure at least two epochs before the operation began.
	for tid := range s.threads {
		ts := &s.threads[tid]
		for slot := 0; slot < 4; slot++ {
			fb := &ts.free[slot]
			fb.mu.Lock()
			label := fb.label
			ok := label != 0 && label <= curr-2 && len(fb.addrs) > 0
			fb.mu.Unlock()
			if ok && minActive >= label+2 {
				s.reclaimSlot(chargeTid, ts, label)
			}
		}
	}
}
