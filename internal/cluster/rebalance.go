package cluster

import (
	"fmt"
	"os"

	"montage/internal/kvstore"
	"montage/internal/pool"
)

// Rebalancing. Ring membership changes move key ownership between
// nodes; the data must follow, offline, before the new ring serves
// traffic. Two granularities:
//
//   - AdoptImage moves a node's whole pool image (single file or
//     MANIFEST shard directory) to a new path — the cheap case, when a
//     node keeps its keys but its image must live somewhere else (new
//     disk, renamed node directory).
//   - Rebalance redistributes individual keys between node images per a
//     new ring: each image is opened and recovered, keys whose owner
//     changed are copied into the new owner's store and deleted from
//     the old, and every image is saved back. Items keep their values
//     (client flags ride inside the value bytes); cache-local metadata
//     — TTL and CAS generation — is reset on moved items, which a
//     correct memcached client must tolerate anyway (a cache may drop
//     or refresh items at will, and CAS tokens are never durable
//     promises).

// NodeImage names one node's pool image on disk.
type NodeImage struct {
	// Name is the node's ring name (its serve address).
	Name string
	// Path is the node's pool image (raw file or MANIFEST directory).
	// Missing images mean an empty node (fresh pools are created and
	// saved for them).
	Path string
}

// RebalanceStats reports what a Rebalance did.
type RebalanceStats struct {
	Nodes   int      `json:"nodes"`
	Keys    int      `json:"keys"`
	Moved   int      `json:"moved"`
	Created []string `json:"created,omitempty"`
}

// AdoptImage moves a whole pool image from oldPath to newPath (rename;
// same filesystem). It refuses to clobber an existing image at newPath.
func AdoptImage(oldPath, newPath string) error {
	if _, err := os.Stat(oldPath); err != nil {
		return fmt.Errorf("cluster: adopt: %w", err)
	}
	if _, err := os.Stat(newPath); err == nil {
		return fmt.Errorf("cluster: adopt: %s already exists", newPath)
	}
	if err := os.Rename(oldPath, newPath); err != nil {
		return fmt.Errorf("cluster: adopt: %w", err)
	}
	return nil
}

// openedImage is one image opened for rebalancing.
type openedImage struct {
	path    string
	p       *pool.Pool
	store   *kvstore.Store
	created bool
}

// Rebalance redistributes keys among node images so that every key
// lives on the node a ring over newNodes' names assigns it. Every
// distinct image path is opened once (a fresh pool is created for
// missing images), keys are moved, and all images are saved back.
// vnodes must match what the serving proxy will use; cfg shapes fresh
// pools and recovery (ArenaSize, MaxThreads, Shards for new images).
func Rebalance(newNodes []NodeImage, vnodes, nBuckets int, cfg pool.Config) (RebalanceStats, error) {
	var st RebalanceStats
	st.Nodes = len(newNodes)
	if len(newNodes) == 0 {
		return st, fmt.Errorf("cluster: rebalance needs at least one node")
	}
	if nBuckets <= 0 {
		nBuckets = 4096
	}
	names := make([]string, len(newNodes))
	for i, n := range newNodes {
		names[i] = n.Name
	}
	ring := NewRing(names, vnodes)

	// Open each distinct image once; two nodes sharing a path is a
	// configuration error worth surfacing, not silently merging.
	byPath := make(map[string]*openedImage, len(newNodes))
	byName := make(map[string]*openedImage, len(newNodes))
	imgs := make([]*openedImage, 0, len(newNodes))
	defer func() {
		for _, img := range imgs {
			img.p.Close()
		}
	}()
	for _, n := range newNodes {
		if _, dup := byPath[n.Path]; dup {
			return st, fmt.Errorf("cluster: rebalance: two nodes share image %s", n.Path)
		}
		img, err := openImage(n.Path, nBuckets, cfg)
		if err != nil {
			return st, err
		}
		imgs = append(imgs, img)
		byPath[n.Path] = img
		byName[n.Name] = img
		if img.created {
			st.Created = append(st.Created, n.Path)
		}
	}

	// Move every key that no longer lives where the ring says. tid 0 is
	// fine: rebalancing is single-threaded and offline. Key lists are
	// snapshotted before any move so a key counts once even when its new
	// owner's image is processed after it lands there.
	keyLists := make([][]string, len(newNodes))
	for i, n := range newNodes {
		keyLists[i] = byName[n.Name].store.Keys(0)
	}
	for i, n := range newNodes {
		src := byName[n.Name]
		for _, key := range keyLists[i] {
			st.Keys++
			dst := byName[ring.NodeName(key)]
			if dst == src {
				continue
			}
			val, ok := src.store.Get(0, key)
			if !ok {
				continue // expired between Keys and Get
			}
			if _, err := dst.store.SetTag(0, key, val, 0); err != nil {
				return st, fmt.Errorf("cluster: rebalance: move %q: %w", key, err)
			}
			if _, _, err := src.store.DeleteTag(0, key); err != nil {
				return st, fmt.Errorf("cluster: rebalance: drop %q: %w", key, err)
			}
			st.Moved++
		}
	}

	for _, img := range imgs {
		if err := img.p.Save(0, img.path); err != nil {
			return st, fmt.Errorf("cluster: rebalance: save %s: %w", img.path, err)
		}
	}
	return st, nil
}

// openImage opens (and recovers) one node's pool image, or creates a
// fresh pool when the image does not exist yet.
func openImage(path string, nBuckets int, cfg pool.Config) (*openedImage, error) {
	workers := cfg.Core.MaxThreads
	if workers < 1 {
		workers = 1
	}
	p, chunks, loaded, err := pool.Open(path, cfg, workers)
	if err != nil {
		return nil, fmt.Errorf("cluster: rebalance: open %s: %w", path, err)
	}
	if loaded {
		store, err := kvstore.RecoverShardedStore(p, nBuckets, chunks, 0)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("cluster: rebalance: rebuild %s: %w", path, err)
		}
		return &openedImage{path: path, p: p, store: store}, nil
	}
	p, err = pool.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: rebalance: create %s: %w", path, err)
	}
	store := kvstore.New(kvstore.NewShardedBackend(p, nBuckets), 0)
	return &openedImage{path: path, p: p, store: store, created: true}, nil
}
