package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"montage/internal/cluster"
	"montage/internal/server"
)

// setModeLoose switches the connection's durability-ack mode, tolerating
// a SERVER_ERROR response. Through the cluster proxy a mode change is a
// broadcast, and a dead backend fails the broadcast's combined ack — but
// the proxy applies the mode to the connection regardless and replays it
// in its redial handshake, so every future ack still carries the right
// mode. Only a protocol-level refusal is fatal.
func (c *netClient) setModeLoose(m AckMode) error {
	if c.mode == m {
		return nil
	}
	resp, err := c.cmd("durability %s\r\n", m)
	if err != nil {
		return err
	}
	if resp != "OK" && !strings.HasPrefix(resp, "SERVER_ERROR") {
		return fmt.Errorf("durability %s: %q", m, resp)
	}
	c.mode = m
	return nil
}

// runClusterSchedule drives one schedule through a consistent-hash proxy
// over cfg.Nodes live servers. It layers two failure events on top of the
// net-mode recipe:
//
//   - A seeded victim node is killed and revived mid-schedule WITHOUT
//     marking a crash in the history. Binding acks (sync, epoch-wait) are
//     durable before they are issued, so they must survive a node crash
//     that the history never sees; ops that race the dead node come back
//     as SERVER_ERROR lines and are recorded as non-binding.
//   - The recorded crash downs the whole cluster: MarkCrash first, then
//     every node is killed and revived in place. Workers keep running
//     into the outage (their acks stamp after the crash instant and bind
//     nothing), exactly like net mode's in-flight races.
//
// The readback walks the key universe through the proxy against the
// recovered fleet, and the checker runs with nil cutoffs (binding-ack
// checks only — per-node watermarks are not observable through the wire).
func runClusterSchedule(cfg Config) (Result, error) {
	res := Result{Seed: cfg.Seed, Shards: cfg.Shards, Mode: cfg.Mode, Net: true, Nodes: cfg.Nodes, Blocking: cfg.BlockingAdvance}
	rng := rand.New(rand.NewSource(cfg.Seed))
	plan := drawPlan(rng, cfg)
	// Cluster-only draws, after the plan so the shared prefix of the
	// decision vector matches net mode for the same seed.
	victim := rng.Intn(cfg.Nodes)
	killAfter := uint64(1 + rng.Intn(int(plan.afterOps)))
	reviveDelay := time.Duration(1+rng.Intn(20)) * time.Millisecond
	res.Trigger = fmt.Sprintf("cluster%d-ops@%d+kill-n%d@%d", cfg.Nodes, plan.afterOps, victim, killAfter)

	nodes := make([]*server.Server, cfg.Nodes)
	addrs := make([]string, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		srv, err := server.New(server.Config{
			Shards:          cfg.Shards,
			ArenaSize:       cfg.ArenaSize,
			MaxConns:        cfg.Workers + 6,
			EpochLength:     500 * time.Microsecond,
			AllowCrash:      true,
			BlockingAdvance: cfg.BlockingAdvance,
			Recorder:        cfg.Recorder,
		})
		if err != nil {
			return res, err
		}
		addr, err := srv.Listen()
		if err != nil {
			return res, err
		}
		go srv.Serve()
		defer srv.Shutdown(2 * time.Second)
		srv.SeedCrashRNG(cfg.Seed*31 + int64(n))
		nodes[n] = srv
		addrs[n] = addr.String()
	}

	// RetryWindow stays well under the clients' 10s line deadline so an
	// op routed at a node that never comes back fails with a SERVER_ERROR
	// while the client is still listening.
	px, err := cluster.NewProxy(cluster.Config{
		Nodes:          addrs,
		MaxConns:       cfg.Workers + 4,
		RetryWindow:    3 * time.Second,
		BackendTimeout: 8 * time.Second,
		Recorder:       cfg.Recorder,
	})
	if err != nil {
		return res, err
	}
	pxAddr, err := px.Listen()
	if err != nil {
		return res, err
	}
	go px.Serve()
	defer px.Shutdown(2 * time.Second)

	hist := NewHistory(cfg.Workers)
	crashed := make(chan struct{})
	var crashOnce sync.Once
	markCrashed := func() { crashOnce.Do(func() { close(crashed) }) }

	killRevive := func(srv *server.Server, delay time.Duration) error {
		if err := srv.Kill(cfg.Mode); err != nil {
			return err
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		if _, err := srv.Revive(); err != nil {
			return err
		}
		go srv.Serve()
		return nil
	}

	// The driver owns both failure events, serialized in one goroutine so
	// the victim kill can never race the cluster-wide crash on the same
	// node. workersDone forces any event the op stream never reached (a
	// worker error stalls Completed below the trigger) so every schedule
	// exercises the kill+revive path and ends with a recorded crash.
	var driverErr error
	driverDone := make(chan struct{})
	workersDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		defer markCrashed()
		killed := false
		for {
			done := false
			select {
			case <-workersDone:
				done = true
			default:
			}
			n := hist.Completed()
			if !killed && (n >= killAfter || done) {
				killed = true
				if err := killRevive(nodes[victim], reviveDelay); err != nil {
					driverErr = fmt.Errorf("victim kill+revive: %w", err)
					return
				}
			}
			if killed && (n >= plan.afterOps || done) {
				hist.MarkCrash()
				for i, srv := range nodes {
					if err := killRevive(srv, 0); err != nil {
						driverErr = fmt.Errorf("crash node %d: %w", i, err)
						return
					}
				}
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	opErrs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		c, err := dialNet(pxAddr.String())
		if err != nil {
			close(workersDone)
			wg.Wait()
			<-driverDone
			return res, err
		}
		wg.Add(1)
		go func(w int, c *netClient) {
			defer wg.Done()
			defer c.conn.Close()
			wrng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(w)))
			for i := 0; i < cfg.OpsPerWorker; i++ {
				select {
				case <-crashed:
					return
				default:
				}
				op := Op{Worker: w, Index: i, Key: fmt.Sprintf("k%02d", wrng.Intn(cfg.Keys))}
				if wrng.Intn(4) == 0 {
					op.Kind = OpDelete
				}
				switch wrng.Intn(4) {
				case 0:
					op.Mode = AckSync
				case 1:
					op.Mode = AckEpochWait
				}
				if err := c.setModeLoose(op.Mode); err != nil {
					opErrs[w] = err
					return
				}
				op.Start = hist.Next()
				var resp string
				var err error
				if op.Kind == OpSet {
					op.Value = fmt.Sprintf("s%x.w%d.%d", uint64(cfg.Seed), w, i)
					op.Found = true
					resp, err = c.cmd("set %s 0 0 %d\r\n%s\r\n", op.Key, len(op.Value), op.Value)
				} else {
					resp, err = c.cmd("delete %s\r\n", op.Key)
				}
				if err != nil {
					opErrs[w] = fmt.Errorf("w%d#%d %s %s: %w", w, i, op.Kind, op.Key, err)
					return
				}
				op.End = hist.Next()
				op.AckSeq = op.End
				switch {
				case op.Kind == OpSet && resp == "STORED":
					op.Acked = true
				case op.Kind == OpDelete && resp == "DELETED":
					op.Acked, op.Found = true, true
				case op.Kind == OpDelete && resp == "NOT_FOUND":
					op.Acked, op.Found = true, false
				case strings.HasPrefix(resp, "SERVER_ERROR"):
					// The op raced a crash or a dead node ("SERVER_ERROR
					// crash", "SERVER_ERROR node <addr> unavailable"): no
					// promise was made (Acked stays false) but the effect
					// may be in either state — a raced delete must stay
					// eligible as an absence explainer.
					op.Found = true
				default:
					opErrs[w] = fmt.Errorf("w%d#%d %s %s: unexpected ack %q", w, i, op.Kind, op.Key, resp)
					return
				}
				hist.Record(op)
			}
		}(w, c)
	}
	wg.Wait()
	close(workersDone)
	<-driverDone
	if driverErr != nil {
		return res, driverErr
	}
	for _, e := range opErrs {
		if e != nil {
			return res, e
		}
	}

	rb, err := dialNet(pxAddr.String())
	if err != nil {
		return res, err
	}
	recovered := make(map[string]string)
	for i := 0; i < cfg.Keys; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, ok, gerr := rb.get(k)
		if gerr != nil {
			rb.conn.Close()
			return res, gerr
		}
		if ok {
			recovered[k] = v
		}
	}
	rb.conn.Close()

	ops := hist.Ops()
	res.Ops = len(ops)
	res.History = ops
	res.CrashSeq = hist.CrashSeq()
	res.Survivors = len(recovered)
	res.Violations = Check(CheckInput{
		Ops:       ops,
		CrashSeq:  hist.CrashSeq(),
		Cutoffs:   nil,
		Recovered: recovered,
	})
	recordSchedule(cfg, &res)
	return res, nil
}
