package pds

import (
	"sync"

	"montage/internal/core"
	"montage/internal/dcss"
)

// LFSet is a nonblocking sorted-list set/mapping (a Harris linked list)
// on Montage: the transient index is a lock-free list with mark-bit
// logical deletion; the key-value pairs are payloads. Insert and Remove
// linearize on CASVerify so they provably linearize in the epoch that
// labeled their payloads; Contains and Find are read-only and never touch
// the epoch system (gets are invisible to recovery).
type LFSet struct {
	sys  *core.System
	tag  uint16
	head *lfsNode // sentinel; never removed
}

type lfsNode struct {
	key     string
	payload *core.PBlk
	next    dcss.Cell[lfsNode]
}

// NewLFSet creates an empty set with the default TagLFSet.
func NewLFSet(sys *core.System) *LFSet { return NewLFSetTagged(sys, TagLFSet) }

// NewLFSetTagged creates an empty set whose payloads carry tag.
func NewLFSetTagged(sys *core.System, tag uint16) *LFSet {
	return &LFSet{sys: sys, tag: tag, head: &lfsNode{}}
}

// RecoverLFSet rebuilds the set from recovered payloads, in parallel
// across the provided chunks.
func RecoverLFSet(sys *core.System, chunks [][]*core.PBlk) (*LFSet, error) {
	return RecoverLFSetTagged(sys, chunks, TagLFSet)
}

// RecoverLFSetTagged rebuilds the set from the payloads carrying tag.
func RecoverLFSetTagged(sys *core.System, chunks [][]*core.PBlk, tag uint16) (*LFSet, error) {
	s := NewLFSetTagged(sys, tag)
	filtered := make([][]*core.PBlk, len(chunks))
	for i, c := range chunks {
		filtered[i] = core.FilterByTag(c, tag)
	}
	chunks = filtered
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for w, chunk := range chunks {
		wg.Add(1)
		go func(w int, chunk []*core.PBlk) {
			defer wg.Done()
			for _, p := range chunk {
				key, _, ok := decodeKV(sys.Read(w, p))
				if !ok {
					errs[w] = ErrCorruptPayload
					return
				}
				node := &lfsNode{key: key, payload: p}
				for {
					prev, curr := s.find(w, key)
					if curr != nil && curr.key == key {
						break // duplicate uid impossible; defensive
					}
					node.next.Store(curr, false)
					if prev.next.CAS(curr, false, node, false) {
						break
					}
				}
			}
		}(w, chunk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// find returns (prev, curr) where curr is the first unmarked node with
// key >= the search key, physically unlinking marked nodes on the way
// (Harris's helping).
func (s *LFSet) find(tid int, key string) (*lfsNode, *lfsNode) {
retry:
	for {
		prev := s.head
		curr, _ := prev.next.Load()
		for curr != nil {
			succ, marked := curr.next.Load()
			if marked {
				// curr is logically deleted: help unlink it.
				if !prev.next.CAS(curr, false, succ, false) {
					continue retry
				}
				curr = succ
				continue
			}
			if curr.key >= key {
				return prev, curr
			}
			s.sys.Clock().ChargeDRAM(tid, 16)
			prev, curr = curr, succ
		}
		return prev, nil
	}
}

// Insert adds key=val if absent, reporting whether it inserted.
func (s *LFSet) Insert(tid int, key string, val []byte) (inserted bool, err error) {
	s.sys.Clock().ChargeOp(tid)
	err = s.sys.DoOpRetry(tid, func(op core.Op) error {
		inserted = false
		var p *core.PBlk
		defer func() {
			if !inserted && p != nil {
				_ = op.PDelete(p) // roll back the payload on any exit
			}
		}()
		for {
			prev, curr := s.find(tid, key)
			if curr != nil && curr.key == key {
				return nil // present
			}
			if p == nil {
				var perr error
				p, perr = op.PNewTagged(s.tag, encodeKV(key, val))
				if perr != nil {
					return perr
				}
			}
			node := &lfsNode{key: key, payload: p}
			node.next.Store(curr, false)
			swapped, epochOK := dcss.CASVerify(s.sys.Epochs(), op.Epoch(), &prev.next, curr, false, node, false)
			if !epochOK {
				return core.ErrOldSeeNew
			}
			if swapped {
				inserted = true
				return nil
			}
		}
	})
	return inserted, err
}

// Remove deletes key, reporting whether it was present. The linearizing
// step is the epoch-verified mark CAS; physical unlinking is best-effort
// (find helps).
func (s *LFSet) Remove(tid int, key string) (removed bool, err error) {
	s.sys.Clock().ChargeOp(tid)
	err = s.sys.DoOpRetry(tid, func(op core.Op) error {
		removed = false
		for {
			prev, curr := s.find(tid, key)
			if curr == nil || curr.key != key {
				return nil
			}
			succ, marked := curr.next.Load()
			if marked {
				continue // another remove got it; re-find
			}
			swapped, epochOK := dcss.CASVerify(s.sys.Epochs(), op.Epoch(), &curr.next, succ, false, succ, true)
			if !epochOK {
				return core.ErrOldSeeNew
			}
			if !swapped {
				continue
			}
			// We own the logical deletion: destroy the payload and
			// best-effort unlink.
			if derr := op.PDelete(curr.payload); derr != nil {
				return derr
			}
			prev.next.CAS(curr, false, succ, false)
			removed = true
			return nil
		}
	})
	return removed, err
}

// Contains reports whether key is present (read-only; no epoch work).
func (s *LFSet) Contains(tid int, key string) bool {
	s.sys.Clock().ChargeOp(tid)
	curr, _ := s.head.next.Load()
	for curr != nil && curr.key < key {
		s.sys.Clock().ChargeDRAM(tid, 16)
		curr, _ = curr.next.Load()
	}
	if curr == nil || curr.key != key {
		return false
	}
	_, marked := curr.next.Load()
	return !marked
}

// Get returns a copy of the value stored under key.
func (s *LFSet) Get(tid int, key string) ([]byte, bool) {
	s.sys.Clock().ChargeOp(tid)
	curr, _ := s.head.next.Load()
	for curr != nil && curr.key < key {
		s.sys.Clock().ChargeDRAM(tid, 16)
		curr, _ = curr.next.Load()
	}
	if curr == nil || curr.key != key {
		return nil, false
	}
	if _, marked := curr.next.Load(); marked {
		return nil, false
	}
	_, v, ok := decodeKV(s.sys.Read(tid, curr.payload))
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len counts unmarked nodes (O(n), tests only).
func (s *LFSet) Len() int {
	n := 0
	curr, _ := s.head.next.Load()
	for curr != nil {
		_, marked := curr.next.Load()
		if !marked {
			n++
		}
		curr, _ = curr.next.Load()
	}
	return n
}

// Snapshot returns the set contents (tests only; not linearizable).
func (s *LFSet) Snapshot(tid int) map[string][]byte {
	out := map[string][]byte{}
	curr, _ := s.head.next.Load()
	for curr != nil {
		if _, marked := curr.next.Load(); !marked {
			_, v, ok := decodeKV(s.sys.Read(tid, curr.payload))
			if ok {
				out[curr.key] = append([]byte(nil), v...)
			}
		}
		curr, _ = curr.next.Load()
	}
	return out
}
