package pool_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"montage/internal/epoch"
	"montage/internal/kvstore"
	"montage/internal/pmem"
	"montage/internal/pool"
)

// The crash matrix drives a sharded store from concurrent writers, acks
// a known subset of writes through both durability paths (per-shard
// sync and per-shard epoch-wait), crashes the whole pool, and checks
// the paper's buffered-durability contract shard by shard:
//
//   - every acked write survives recovery (or is superseded only by a
//     later write to the same key),
//   - every acked delete stays deleted,
//   - nothing resurrects that was never written.
//
// It runs DropAll and Partial crashes against 1-, 2-, and 4-shard
// pools, with seeded crash RNG so Partial's losses are reproducible.
func TestShardedCrashMatrix(t *testing.T) {
	crashes := []struct {
		name string
		mode pmem.CrashMode
	}{
		{"dropall", pmem.CrashDropAll},
		{"partial", pmem.CrashPartial},
	}
	for _, shards := range []int{1, 2, 4} {
		for _, cr := range crashes {
			t.Run(fmt.Sprintf("%s/shards=%d", cr.name, shards), func(t *testing.T) {
				runCrashMatrix(t, shards, cr.mode, int64(shards)*1000+int64(len(cr.name)))
			})
		}
	}
}

// keyFate is one key's journal: what was acked last, and whether an
// unacked write followed it.
type keyFate struct {
	key     string
	acked   string // last acked value ("" = acked delete)
	unacked string // unacked value written after the ack, if any
}

func runCrashMatrix(t *testing.T, shards int, mode pmem.CrashMode, seed int64) {
	const workers = 3
	const keysPerWorker = 8

	cfg := pool.Config{
		Shards: shards,
		Core:   testCoreConfig(),
	}
	cfg.Core.MaxThreads = workers + 1
	// Real epoch daemons, fast ticks: epoch-wait acks must complete by
	// riding the persist watermark, exactly as the server's writer does.
	cfg.Core.Epoch = epoch.Config{EpochLength: 200 * time.Microsecond}
	p, err := pool.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.SeedCrashRNG(seed)
	store := kvstore.New(kvstore.NewShardedBackend(p, 128), 0)

	fates := make([][]keyFate, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := w
			for i := 0; i < keysPerWorker; i++ {
				f := keyFate{key: fmt.Sprintf("w%d-k%d", w, i)}
				// Two buffered (unacked) versions, then an acked third.
				for v := 1; v <= 2; v++ {
					if err := store.Set(tid, f.key, []byte(val(f.key, v))); err != nil {
						t.Error(err)
						return
					}
				}
				tag, err := store.SetTag(tid, f.key, []byte(val(f.key, 3)), 0)
				if err != nil {
					t.Error(err)
					return
				}
				f.acked = val(f.key, 3)
				// Alternate the two ack paths: forced per-shard sync vs
				// parking on the owning shard's persist watermark.
				if i%2 == 0 {
					p.Shard(tag.Shard).Sync(tid)
				} else if !p.Shard(tag.Shard).Epochs().WaitPersisted(tag.Epoch, nil) {
					t.Errorf("%s: epoch-wait ack aborted", f.key)
					return
				}
				switch i % 3 {
				case 0:
					// A trailing unacked write: may survive or vanish, but the
					// key must never regress below the acked version.
					f.unacked = val(f.key, 4)
					if err := store.Set(tid, f.key, []byte(f.unacked)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					// An acked delete: must stay deleted.
					_, dtag, err := store.DeleteTag(tid, f.key)
					if err != nil {
						t.Error(err)
						return
					}
					p.Shard(dtag.Shard).Sync(tid)
					f.acked = ""
				}
				fates[w] = append(fates[w], f)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	p.Crash(mode)
	p2, chunks, err := p.Recover(2)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	store2, err := kvstore.RecoverShardedStore(p2, 128, chunks, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, fs := range fates {
		for _, f := range fs {
			got, ok := store2.Get(0, f.key)
			if f.acked == "" {
				// Acked delete with nothing written after: resurrection is a
				// durability violation regardless of crash mode.
				if ok {
					t.Errorf("%s: acked delete resurrected as %q", f.key, got)
				}
				continue
			}
			if !ok {
				t.Errorf("%s: acked write lost (wanted %q)", f.key, f.acked)
				continue
			}
			if string(got) != f.acked && (f.unacked == "" || string(got) != f.unacked) {
				t.Errorf("%s = %q, want acked %q or trailing %q", f.key, got, f.acked, f.unacked)
			}
		}
	}

	// The recovered pool must be live on every shard.
	for i := 0; i < 4*shards; i++ {
		k := fmt.Sprintf("post-%d", i)
		if err := store2.Set(0, k, []byte("alive")); err != nil {
			t.Fatal(err)
		}
		if v, ok := store2.Get(0, k); !ok || string(v) != "alive" {
			t.Fatalf("post-recovery write %s = %q %v", k, v, ok)
		}
	}
}

func val(key string, ver int) string { return fmt.Sprintf("%s-v%d", key, ver) }
