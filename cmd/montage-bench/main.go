// Command montage-bench regenerates the tables and figures of the
// Montage paper's evaluation (Section 6) over the simulated-NVM
// substrate, printing one table per figure with the same series the
// paper plots.
//
// Usage:
//
//	montage-bench -figure all
//	montage-bench -figure 7a -scale default
//	montage-bench -figure 6 -systems Montage,Friedman,DRAM(T)
//	montage-bench -figure recovery
//
// Figures: 4, 5, 6, 7a, 7b, 8a, 8b, 9, 10, 11, 12, recovery, all.
// Scales: quick, default, paper.
//
// Two subcommands wrap the continuous-regression harness
// (internal/benchsuite):
//
//	montage-bench run-suite -quick -out BENCH_head.json
//	montage-bench compare BENCH_6.json BENCH_head.json
//
// run-suite executes the suite's sections and writes a versioned
// machine-readable BENCH artifact; compare diffs two artifacts under
// per-metric tolerance bands and exits nonzero on regression.
//
// The extra "net" figure benchmarks the TCP front end (internal/server)
// on loopback, sweeping the three durability-ack modes across
// connection counts in real wall-clock time; "shard" sweeps the pool's
// shard count (independent epoch domains) under the same loadgen.
// Neither is part of "all" because their numbers depend on the host,
// not the simulated device. "writeback" profiles the device's
// write-combining pipeline (combine ratio and serial-vs-parallel drain)
// under a write-only zipfian load; it runs on virtual time but is kept
// out of "all" as a device-tuning figure rather than a paper figure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"montage/internal/bench"
	"montage/internal/obs"
)

// rowRecord is one benchmark data point in the -stats-file JSONL stream:
// the figure coordinates plus the runtime counters accumulated while
// that point ran (nil stats for uninstrumented baseline systems).
type rowRecord struct {
	Kind   string        `json:"kind"`
	Figure string        `json:"figure"`
	Series string        `json:"series"`
	Label  string        `json:"label"`
	X      float64       `json:"x"`
	Value  float64       `json:"value"`
	Unit   string        `json:"unit"`
	Stats  *obs.Snapshot `json:"stats,omitempty"`
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run-suite":
			os.Exit(runSuiteMain(os.Args[2:]))
		case "compare":
			os.Exit(compareMain(os.Args[2:]))
		}
	}
	legacyMain()
}

func legacyMain() {
	var (
		figure  = flag.String("figure", "all", "figure to regenerate: 4,5,6,7a,7b,8a,8b,9,10,11,12,recovery,net,engines,shard,cluster,writeback,all")
		scale   = flag.String("scale", "default", "workload scale: quick, default, paper")
		systems = flag.String("systems", "", "comma-separated subset of systems (default: all for the figure)")
		threads = flag.String("threads", "", "comma-separated thread counts (default: scale's list)")
		ops     = flag.Int("ops", 0, "operations per thread (default: scale's value)")
		dataDir = flag.String("datadir", "", "directory for the figure-12 dataset (default: temp)")
		csvPath = flag.String("csv", "", "also append results as CSV to this file")

		statsOut      = flag.Bool("stats", false, "print a final runtime-stats snapshot as JSON on stdout")
		statsFile     = flag.String("stats-file", "", "write a JSONL runtime-stats stream (periodic samples, per-row stats, final snapshot) to this file")
		statsInterval = flag.Duration("stats-interval", time.Second, "periodic sample interval for -stats-file (0 disables periodic samples)")
	)
	flag.Parse()

	var sc bench.Scale
	switch *scale {
	case "quick":
		sc = bench.QuickScale()
	case "default":
		sc = bench.DefaultScale()
	case "paper":
		sc = bench.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *threads != "" {
		sc.Threads = nil
		for _, tok := range strings.Split(*threads, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &n); err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad thread count %q\n", tok)
				os.Exit(2)
			}
			sc.Threads = append(sc.Threads, n)
		}
	}
	if *ops > 0 {
		sc.OpsPerThread = *ops
	}
	var sysList []string
	if *systems != "" {
		for _, tok := range strings.Split(*systems, ",") {
			sysList = append(sysList, strings.TrimSpace(tok))
		}
	}

	// One recorder is shared by every Montage system the harness builds,
	// so the stats stream and final snapshot cover the whole run. Thread
	// ids beyond its capacity clamp to the last cell (the default scale
	// sweeps up to 80 threads).
	var rec *obs.Recorder
	var sampler *obs.Sampler
	if *statsOut || *statsFile != "" {
		rec = obs.New(128)
		sc.Recorder = rec
		obs.PublishExpvar("montage", rec)
	}
	if *statsFile != "" {
		f, err := os.Create(*statsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stats-file: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sampler = obs.NewSampler(rec, f, *statsInterval)
	}

	figures := []string{*figure}
	if *figure == "all" {
		figures = []string{"4", "5", "6", "7a", "7b", "8a", "8b", "9", "10", "11", "12", "recovery"}
	}

	for _, fig := range figures {
		start := time.Now()
		var rs []bench.Result
		var err error
		switch fig {
		case "4":
			rs, err = bench.Fig4Design(sc, nil, 40)
		case "5":
			rs, err = bench.Fig5Design(sc, nil)
		case "6":
			rs, err = bench.Fig6Queues(sc, sysList)
		case "7a":
			rs, err = bench.Fig7Maps(sc, sysList, false)
		case "7b":
			rs, err = bench.Fig7Maps(sc, sysList, true)
		case "8a":
			rs, err = bench.Fig8Payload(sc, sysList, false)
		case "8b":
			rs, err = bench.Fig8Payload(sc, sysList, true)
		case "9":
			rs, err = bench.Fig9Sync(sc, 40, nil)
		case "10":
			rs, err = bench.Fig10Memcached(sc)
		case "11":
			rs, err = bench.Fig11Graph(sc)
		case "12":
			rs, err = bench.Fig12Recovery(sc, *dataDir)
		case "recovery":
			rs, err = bench.RecoveryHashmap(sc, nil, nil)
		case "net":
			rs, err = bench.FigNet(sc, nil, nil)
		case "engines":
			rs, err = bench.FigEngines(sc, nil, nil)
		case "shard":
			rs, err = bench.FigShard(sc, nil, nil)
		case "cluster":
			rs, err = bench.FigCluster(sc, nil, nil)
		case "writeback":
			rs, err = bench.FigWriteback(sc, nil)
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", fig)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s failed: %v\n", fig, err)
			os.Exit(1)
		}
		bench.PrintResults(os.Stdout, rs)
		if sampler != nil {
			for _, r := range rs {
				unit := r.Unit
				if unit == "" {
					unit = "Mops/s"
				}
				sampler.Record(rowRecord{
					Kind: "row", Figure: r.Figure, Series: r.Series,
					Label: r.Label, X: r.X, Value: r.Mops, Unit: unit,
					Stats: r.Stats,
				})
			}
		}
		if *csvPath != "" {
			f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
				os.Exit(1)
			}
			bench.WriteCSV(f, rs)
			f.Close()
		}
		fmt.Printf("(figure %s regenerated in %v wall time)\n\n", fig, time.Since(start).Round(time.Millisecond))
	}

	if sampler != nil {
		if err := sampler.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "stats-file: %v\n", err)
			os.Exit(1)
		}
	}
	if *statsOut {
		b, err := json.MarshalIndent(rec.Snapshot(), "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "stats: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", b)
	}
}
