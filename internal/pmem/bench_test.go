package pmem

import (
	"testing"

	"montage/internal/simclock"
)

// BenchmarkWriteBack measures the steady-state hot path the write-combining
// pipeline targets: an epoch's worth of repeated updates to a small working
// set of blocks, committed by one fence — exactly what a Montage epoch does
// with a skewed workload. Each iteration stages 64 write-backs spread over 8
// blocks (8 updates per block) and fences once.
func BenchmarkWriteBack(b *testing.B) {
	d := NewDevice(1<<20, 1, nil)
	const (
		blocks  = 8
		rewrite = 8
		blockSz = 256
	)
	data := make([]byte, blockSz)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(blocks * rewrite * blockSz))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rewrite; r++ {
			data[0] = byte(r) // each rewrite carries fresh bytes
			for blk := 0; blk < blocks; blk++ {
				addr := Addr(4096 + blk*blockSz)
				if err := d.WriteBack(0, addr, data); err != nil {
					b.Fatal(err)
				}
			}
		}
		d.Fence(0)
	}
}

// BenchmarkWriteBackUnique is the no-locality control: every write-back in
// an iteration hits a distinct block, so combining never fires and the
// benchmark isolates the cost of staging + commit itself.
func BenchmarkWriteBackUnique(b *testing.B) {
	d := NewDevice(1<<20, 1, nil)
	const (
		writes  = 64
		blockSz = 256
	)
	data := make([]byte, blockSz)
	b.SetBytes(int64(writes * blockSz))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < writes; w++ {
			addr := Addr(4096 + w*blockSz)
			if err := d.WriteBack(0, addr, data); err != nil {
				b.Fatal(err)
			}
		}
		d.Fence(0)
	}
}

// BenchmarkDrain measures the epoch daemon's boundary drain with writes
// spread across every worker thread, the path the parallel drain partitions.
func BenchmarkDrain(b *testing.B) {
	const (
		threads = 8
		perThr  = 64
		blockSz = 256
	)
	d := NewDevice(1<<24, threads, nil)
	data := make([]byte, blockSz)
	b.SetBytes(int64(threads * perThr * blockSz))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tid := 0; tid < threads; tid++ {
			for w := 0; w < perThr; w++ {
				addr := Addr(4096 + (tid*perThr+w)*blockSz)
				if err := d.WriteBack(tid, addr, data); err != nil {
					b.Fatal(err)
				}
			}
		}
		d.Drain(simclock.DaemonTID)
	}
}
